#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace das::fault {

namespace {

[[noreturn]] void spec_error(const std::string& what, const std::string& token) {
  throw std::invalid_argument("fault spec: " + what + " in token '" + token +
                              "'");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// Parses a time literal: bare number = microseconds, `us`/`ms` suffixes
/// accepted ("50ms", "250us", "80.5ms").
double parse_time(const std::string& text, const std::string& token) {
  if (text.empty()) spec_error("empty time", token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  std::string suffix(end);
  double scale = 1.0;
  if (suffix == "ms") {
    scale = kMillisecond;
  } else if (!suffix.empty() && suffix != "us") {
    spec_error("malformed time '" + text + "'", token);
  }
  if (end == text.c_str()) spec_error("malformed time '" + text + "'", token);
  if (!(value >= 0)) spec_error("negative time '" + text + "'", token);
  return value * scale;
}

ServerId parse_server(const std::string& text, const std::string& token) {
  if (text.size() < 2 || text[0] != 's')
    spec_error("expected server 'sN', got '" + text + "'", token);
  char* end = nullptr;
  const unsigned long id = std::strtoul(text.c_str() + 1, &end, 10);
  if (*end != '\0')
    spec_error("malformed server id '" + text + "'", token);
  return static_cast<ServerId>(id);
}

ClientId parse_client(const std::string& text, const std::string& token) {
  if (text == "*") return kAllClients;
  if (text.size() < 2 || text[0] != 'c')
    spec_error("expected client 'cN' or '*', got '" + text + "'", token);
  char* end = nullptr;
  const unsigned long id = std::strtoul(text.c_str() + 1, &end, 10);
  if (*end != '\0')
    spec_error("malformed client id '" + text + "'", token);
  return static_cast<ClientId>(id);
}

double parse_factor(const std::string& text, char prefix,
                    const std::string& token) {
  if (text.size() < 2 || text[0] != prefix)
    spec_error(std::string("expected '") + prefix + "<value>', got '" + text +
                   "'",
               token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str() + 1, &end);
  if (*end != '\0' || end == text.c_str() + 1)
    spec_error("malformed factor '" + text + "'", token);
  return value;
}

/// Splits "T1-T2" into a (start, end) window.
std::pair<double, double> parse_window(const std::string& text,
                                       const std::string& token) {
  const std::size_t dash = text.find('-');
  if (dash == std::string::npos)
    spec_error("expected time window 'T1-T2', got '" + text + "'", token);
  const double start = parse_time(text.substr(0, dash), token);
  const double end = parse_time(text.substr(dash + 1), token);
  if (!(end > start)) spec_error("window must end after it starts", token);
  return {start, end};
}

[[noreturn]] void plan_error(std::size_t index, const FaultEvent& ev,
                             const std::string& what) {
  std::ostringstream os;
  os << "fault plan: event " << index << " (" << to_string(ev.kind) << " at "
     << ev.at << "us): " << what;
  throw std::invalid_argument(os.str());
}

/// Time-sorted copy; ties keep scripted order so crash@T,recover@T stays
/// crash-then-recover.
std::vector<FaultEvent> sorted_events(const FaultPlan& plan) {
  std::vector<FaultEvent> sorted = plan.events;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return sorted;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kSlowStart: return "slow-start";
    case FaultKind::kSlowEnd: return "slow-end";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLossStart: return "loss-start";
    case FaultKind::kLossEnd: return "loss-end";
  }
  return "unknown";
}

bool FaultPlan::loses_work() const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::kCrash || ev.kind == FaultKind::kPartition ||
        ev.kind == FaultKind::kLossStart) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_unrecovered_failure() const {
  std::map<ServerId, bool> crashed;
  std::map<std::pair<ClientId, ServerId>, bool> partitioned;
  for (const FaultEvent& ev : sorted_events(*this)) {
    switch (ev.kind) {
      case FaultKind::kCrash: crashed[ev.server] = true; break;
      case FaultKind::kRecover: crashed[ev.server] = false; break;
      case FaultKind::kPartition: partitioned[{ev.client, ev.server}] = true; break;
      case FaultKind::kHeal: partitioned[{ev.client, ev.server}] = false; break;
      default: break;
    }
  }
  for (const auto& [server, down] : crashed)
    if (down) return true;
  for (const auto& [link, cut] : partitioned)
    if (cut) return true;
  return false;
}

void FaultPlan::validate(std::uint32_t num_servers,
                         std::uint32_t num_clients) const {
  const std::vector<FaultEvent> sorted = sorted_events(*this);
  std::map<ServerId, bool> crashed;
  std::map<ServerId, bool> slowed;
  std::map<std::pair<ClientId, ServerId>, bool> partitioned;
  bool bursting = false;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const FaultEvent& ev = sorted[i];
    if (!(ev.at >= 0)) plan_error(i, ev, "time must be >= 0");
    const bool targets_server = ev.kind == FaultKind::kCrash ||
                                ev.kind == FaultKind::kRecover ||
                                ev.kind == FaultKind::kSlowStart ||
                                ev.kind == FaultKind::kSlowEnd ||
                                ev.kind == FaultKind::kPartition ||
                                ev.kind == FaultKind::kHeal;
    if (targets_server && ev.server >= num_servers)
      plan_error(i, ev, "server index out of range (num_servers=" +
                            std::to_string(num_servers) + ")");
    switch (ev.kind) {
      case FaultKind::kCrash:
        if (crashed[ev.server]) plan_error(i, ev, "server already crashed");
        crashed[ev.server] = true;
        break;
      case FaultKind::kRecover:
        if (!crashed[ev.server]) plan_error(i, ev, "server is not crashed");
        crashed[ev.server] = false;
        break;
      case FaultKind::kSlowStart:
        if (!(ev.factor > 0))
          plan_error(i, ev, "slowdown factor must be > 0");
        if (slowed[ev.server])
          plan_error(i, ev, "server already in a slowdown window");
        slowed[ev.server] = true;
        break;
      case FaultKind::kSlowEnd:
        if (!slowed[ev.server])
          plan_error(i, ev, "server has no open slowdown window");
        slowed[ev.server] = false;
        break;
      case FaultKind::kPartition:
      case FaultKind::kHeal: {
        if (ev.client != kAllClients && ev.client >= num_clients)
          plan_error(i, ev, "client index out of range (num_clients=" +
                                std::to_string(num_clients) + ")");
        std::vector<ClientId> targets;
        if (ev.client == kAllClients) {
          for (ClientId c = 0; c < num_clients; ++c) targets.push_back(c);
        } else {
          targets.push_back(ev.client);
        }
        const bool cutting = ev.kind == FaultKind::kPartition;
        for (const ClientId c : targets) {
          bool& cut = partitioned[{c, ev.server}];
          if (cut == cutting)
            plan_error(i, ev,
                       cutting ? "link already partitioned"
                               : "link is not partitioned");
          cut = cutting;
        }
        break;
      }
      case FaultKind::kLossStart:
        if (!(ev.factor >= 0 && ev.factor < 1))
          plan_error(i, ev, "burst loss probability must be in [0, 1)");
        if (bursting) plan_error(i, ev, "loss burst already open");
        bursting = true;
        break;
      case FaultKind::kLossEnd:
        if (!bursting) plan_error(i, ev, "no open loss burst");
        bursting = false;
        break;
    }
  }
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& token : split(spec, ',')) {
    if (token.empty()) spec_error("empty event", spec);
    const std::size_t at_pos = token.find('@');
    if (at_pos == std::string::npos)
      spec_error("missing '@'", token);
    const std::string name = token.substr(0, at_pos);
    const std::vector<std::string> fields =
        split(token.substr(at_pos + 1), ':');
    if (name == "crash" || name == "recover") {
      if (fields.size() != 2) spec_error("expected '" + name + "@T:sN'", token);
      FaultEvent ev;
      ev.at = parse_time(fields[0], token);
      ev.kind = name == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
      ev.server = parse_server(fields[1], token);
      plan.events.push_back(ev);
    } else if (name == "slow") {
      if (fields.size() != 3) spec_error("expected 'slow@T1-T2:sN:xF'", token);
      const auto [start, end] = parse_window(fields[0], token);
      const ServerId server = parse_server(fields[1], token);
      const double factor = parse_factor(fields[2], 'x', token);
      if (!(factor > 0)) spec_error("slowdown factor must be > 0", token);
      plan.events.push_back(
          {start, FaultKind::kSlowStart, server, kAllClients, factor});
      plan.events.push_back(
          {end, FaultKind::kSlowEnd, server, kAllClients, 1.0});
    } else if (name == "partition" || name == "heal") {
      if (fields.size() != 2)
        spec_error("expected '" + name + "@T:cA-sB'", token);
      const std::size_t dash = fields[1].find('-');
      if (dash == std::string::npos)
        spec_error("expected link 'cA-sB', got '" + fields[1] + "'", token);
      FaultEvent ev;
      ev.at = parse_time(fields[0], token);
      ev.kind = name == "partition" ? FaultKind::kPartition : FaultKind::kHeal;
      ev.client = parse_client(fields[1].substr(0, dash), token);
      ev.server = parse_server(fields[1].substr(dash + 1), token);
      plan.events.push_back(ev);
    } else if (name == "lossburst") {
      if (fields.size() != 2) spec_error("expected 'lossburst@T1-T2:pP'", token);
      const auto [start, end] = parse_window(fields[0], token);
      const double p = parse_factor(fields[1], 'p', token);
      if (!(p >= 0 && p < 1))
        spec_error("burst loss probability must be in [0, 1)", token);
      plan.events.push_back(
          {start, FaultKind::kLossStart, kInvalidServer, kAllClients, p});
      plan.events.push_back(
          {end, FaultKind::kLossEnd, kInvalidServer, kAllClients, 0.0});
    } else {
      spec_error("unknown event '" + name + "'", token);
    }
  }
  return plan;
}

namespace {

/// Places a window inside [0.05, 0.9) * horizon that does not overlap any
/// window already taken by the same key. Bounded deterministic retries; on
/// failure returns false and the caller skips that fault.
bool place_window(Rng& rng, std::vector<std::pair<double, double>>& taken,
                  double horizon_us, double* start, double* end) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double s = rng.uniform(0.05, 0.65) * horizon_us;
    const double d = rng.uniform(0.02, 0.15) * horizon_us;
    const double e = std::min(s + d, 0.9 * horizon_us);
    bool clear = true;
    for (const auto& [ts, te] : taken) {
      if (s < te && ts < e) {
        clear = false;
        break;
      }
    }
    if (!clear) continue;
    taken.emplace_back(s, e);
    *start = s;
    *end = e;
    return true;
  }
  return false;
}

}  // namespace

FaultPlan make_chaos_plan(const ChaosOptions& options, std::uint64_t seed) {
  FaultPlan plan;
  if (options.num_servers == 0 || options.horizon_us <= 0) return plan;
  Rng rng{seed};
  std::map<ServerId, std::vector<std::pair<double, double>>> crash_windows;
  std::map<ServerId, std::vector<std::pair<double, double>>> slow_windows;
  std::map<std::pair<ClientId, ServerId>,
           std::vector<std::pair<double, double>>>
      cut_windows;
  for (std::uint32_t i = 0; i < options.crashes; ++i) {
    const auto server = static_cast<ServerId>(
        rng.next_below(options.num_servers));
    double start = 0, end = 0;
    if (!place_window(rng, crash_windows[server], options.horizon_us, &start,
                      &end)) {
      continue;
    }
    plan.events.push_back(
        {start, FaultKind::kCrash, server, kAllClients, 1.0});
    plan.events.push_back(
        {end, FaultKind::kRecover, server, kAllClients, 1.0});
  }
  for (std::uint32_t i = 0; i < options.slowdowns; ++i) {
    const auto server = static_cast<ServerId>(
        rng.next_below(options.num_servers));
    double start = 0, end = 0;
    const double factor = rng.uniform(0.15, 0.6);
    if (!place_window(rng, slow_windows[server], options.horizon_us, &start,
                      &end)) {
      continue;
    }
    plan.events.push_back(
        {start, FaultKind::kSlowStart, server, kAllClients, factor});
    plan.events.push_back(
        {end, FaultKind::kSlowEnd, server, kAllClients, 1.0});
  }
  if (options.num_clients > 0) {
    for (std::uint32_t i = 0; i < options.partitions; ++i) {
      const auto server = static_cast<ServerId>(
          rng.next_below(options.num_servers));
      const auto client = static_cast<ClientId>(
          rng.next_below(options.num_clients));
      double start = 0, end = 0;
      if (!place_window(rng, cut_windows[{client, server}],
                        options.horizon_us, &start, &end)) {
        continue;
      }
      plan.events.push_back(
          {start, FaultKind::kPartition, server, client, 1.0});
      plan.events.push_back({end, FaultKind::kHeal, server, client, 1.0});
    }
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

}  // namespace das::fault
