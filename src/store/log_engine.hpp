// Log-structured storage engine.
//
// Writes append to an active segment; an in-memory index maps each key to
// its newest entry. When the active segment fills it is sealed, and when
// enough sealed segments accumulate they are compacted: live entries are
// rewritten into fresh segments, dead versions and tombstones dropped. The
// index can be rebuilt by replaying the segments in order (crash recovery),
// which the tests exercise as an invariant.
//
// This mirrors the write path of Bitcask/LSM-style stores closely enough to
// study engine-level effects (write amplification, space amplification,
// compaction debt) while staying deterministic and allocation-friendly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "store/hash_table.hpp"
#include "store/storage_engine.hpp"

namespace das::store {

struct LogEngineStats {
  std::uint64_t segments_sealed = 0;
  std::uint64_t compactions = 0;
  /// Entries rewritten by compaction (the write-amplification numerator).
  std::uint64_t entries_rewritten = 0;
  /// Entries dropped as dead (overwritten or tombstoned) by compaction.
  std::uint64_t entries_dropped = 0;
};

class LogStructuredEngine final : public KvStore {
 public:
  struct Options {
    /// Entries per segment before it is sealed.
    std::size_t segment_capacity = 4096;
    /// Compact once this many sealed segments exist.
    std::size_t compact_at_segments = 8;
  };

  explicit LogStructuredEngine(Options options);
  LogStructuredEngine() : LogStructuredEngine(Options{}) {}

  std::uint64_t put(KeyId key, Bytes size, SimTime now) override;
  std::optional<ValueRecord> get(KeyId key, SimTime now) override;
  const ValueRecord* peek(KeyId key) const override;
  bool erase(KeyId key) override;
  std::size_t key_count() const override { return live_keys_; }
  const StorageStats& stats() const override { return stats_; }

  const LogEngineStats& log_stats() const { return log_stats_; }
  std::size_t segment_count() const { return sealed_.size() + 1; }
  /// Total entries across all segments (live + dead); space amplification
  /// is total_entries()/key_count().
  std::size_t total_entries() const;

  /// Drops the index and rebuilds it by replaying every segment in order —
  /// the crash-recovery path. The rebuilt state must be observationally
  /// identical (tests assert this).
  void recover();

 private:
  struct Entry {
    KeyId key = 0;
    ValueRecord record;
    bool tombstone = false;
  };
  struct Segment {
    std::vector<Entry> entries;
  };
  struct Location {
    std::uint32_t segment = 0;  // index into sealed_, or kActive
    std::uint32_t offset = 0;
  };
  static constexpr std::uint32_t kActive = 0xFFFFFFFF;

  const Entry& at(Location loc) const;
  void append(KeyId key, const ValueRecord& record, bool tombstone);
  void seal_active_if_full();
  void maybe_compact();

  Options options_;
  std::vector<Segment> sealed_;
  Segment active_;
  RobinHoodMap<Location> index_;
  std::size_t live_keys_ = 0;
  StorageStats stats_;
  LogEngineStats log_stats_;
};

}  // namespace das::store
