// Open-addressing Robin-Hood hash table, u64 keys.
//
// The storage engine's core index. Robin-Hood linear probing with
// backward-shift deletion keeps probe sequences short under high load
// factors and needs no tombstones. Header-only template so the engine can
// index arbitrary value records without indirection.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace das::store {

/// Mixes a 64-bit key to a well-distributed hash (SplitMix64 finaliser).
inline std::uint64_t mix_key(std::uint64_t k) {
  k ^= k >> 30;
  k *= 0xBF58476D1CE4E5B9ull;
  k ^= k >> 27;
  k *= 0x94D049BB133111EBull;
  k ^= k >> 31;
  return k;
}

template <typename V>
class RobinHoodMap {
 public:
  explicit RobinHoodMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(slots_.size());
  }

  /// Inserts or overwrites; returns true if the key was newly inserted.
  bool put(std::uint64_t key, V value) {
    if ((size_ + 1) * 8 > slots_.size() * 7) grow();  // keep load <= 7/8
    return insert_slot(key, std::move(value));
  }

  /// Pointer to the value, or nullptr. Stable only until the next mutation.
  V* find(std::uint64_t key) {
    const std::size_t idx = locate(key);
    return idx == npos ? nullptr : &slots_[idx].value;
  }
  const V* find(std::uint64_t key) const {
    const std::size_t idx = locate(key);
    return idx == npos ? nullptr : &slots_[idx].value;
  }

  bool contains(std::uint64_t key) const { return locate(key) != npos; }

  /// Removes the key; returns the removed value if it was present.
  std::optional<V> erase(std::uint64_t key) {
    std::size_t idx = locate(key);
    if (idx == npos) return std::nullopt;
    std::optional<V> out{std::move(slots_[idx].value)};
    // Backward-shift deletion: pull subsequent displaced entries back.
    const std::size_t mask = slots_.size() - 1;
    std::size_t next = (idx + 1) & mask;
    while (slots_[next].occupied && slots_[next].distance > 0) {
      slots_[idx] = std::move(slots_[next]);
      --slots_[idx].distance;
      idx = next;
      next = (next + 1) & mask;
    }
    slots_[idx] = Slot{};
    --size_;
    return out;
  }

  /// Visits every (key, value) pair; order unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_)
      if (s.occupied) fn(s.key, s.value);
  }

  /// Longest probe distance currently in the table (diagnostics/tests).
  std::size_t max_probe_distance() const {
    std::size_t m = 0;
    for (const auto& s : slots_)
      if (s.occupied) m = std::max(m, static_cast<std::size_t>(s.distance));
    return m;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Slot {
    std::uint64_t key = 0;
    V value{};
    std::uint32_t distance = 0;  // probe distance from home slot
    bool occupied = false;
  };

  std::size_t home(std::uint64_t key) const {
    return mix_key(key) & (slots_.size() - 1);
  }

  std::size_t locate(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = home(key);
    std::uint32_t dist = 0;
    for (;;) {
      const Slot& s = slots_[idx];
      if (!s.occupied) return npos;
      if (s.key == key) return idx;
      // Robin-Hood invariant: once our probe distance exceeds the resident's,
      // the key cannot be further along.
      if (s.distance < dist) return npos;
      idx = (idx + 1) & mask;
      ++dist;
    }
  }

  bool insert_slot(std::uint64_t key, V value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = home(key);
    std::uint32_t dist = 0;
    std::uint64_t cur_key = key;
    V cur_val = std::move(value);
    bool inserted_new = true;
    bool carrying_original = true;
    for (;;) {
      Slot& s = slots_[idx];
      if (!s.occupied) {
        s.key = cur_key;
        s.value = std::move(cur_val);
        s.distance = dist;
        s.occupied = true;
        ++size_;
        return inserted_new;
      }
      if (carrying_original && s.key == cur_key) {
        s.value = std::move(cur_val);
        return false;  // overwrite
      }
      if (s.distance < dist) {
        // Rob the rich: swap with the resident and keep probing for it.
        std::swap(cur_key, s.key);
        std::swap(cur_val, s.value);
        std::swap(dist, s.distance);
        carrying_original = false;
      }
      idx = (idx + 1) & mask;
      ++dist;
    }
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    for (auto& s : old)
      if (s.occupied) insert_slot(s.key, std::move(s.value));
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace das::store
