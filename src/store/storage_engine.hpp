// Per-server in-memory key-value storage engine.
//
// Stores value records (size, version, timestamps) indexed by the Robin-Hood
// table. The simulator models service *time* separately in the server; the
// engine provides the functional behaviour (lookups actually hit or miss, a
// get's byte count comes from the stored record, versions advance on put) so
// workloads read real data rather than synthetic constants.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "store/hash_table.hpp"

namespace das::store {

/// One stored value's metadata. Payload bytes themselves are not
/// materialised — size/version/timestamps are what the scheduling study
/// observes — but the record is laid out so a payload pointer drops in.
struct ValueRecord {
  Bytes size = 0;
  std::uint64_t version = 0;
  SimTime created_at = 0;
  SimTime updated_at = 0;
};

struct StorageStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t deletes = 0;
  Bytes resident_bytes = 0;
};

/// Storage-engine interface the servers program against. Two
/// implementations: the hash-table engine below (default) and the
/// log-structured engine in log_engine.hpp.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites `key`. The version is bumped on every put.
  /// Returns the new version.
  virtual std::uint64_t put(KeyId key, Bytes size, SimTime now) = 0;

  /// Looks up `key`; counts a hit or miss.
  virtual std::optional<ValueRecord> get(KeyId key, SimTime now) = 0;

  /// Read-only peek that does not perturb stats (for tests/metrics).
  virtual const ValueRecord* peek(KeyId key) const = 0;

  /// Removes `key`; returns true if it was present.
  virtual bool erase(KeyId key) = 0;

  virtual std::size_t key_count() const = 0;
  virtual const StorageStats& stats() const = 0;
};

/// Hash-table engine: Robin-Hood open addressing, O(1) everything, values
/// updated in place. The default backend.
class StorageEngine final : public KvStore {
 public:
  StorageEngine() = default;

  std::uint64_t put(KeyId key, Bytes size, SimTime now) override;
  std::optional<ValueRecord> get(KeyId key, SimTime now) override;
  const ValueRecord* peek(KeyId key) const override { return table_.find(key); }
  bool erase(KeyId key) override;
  std::size_t key_count() const override { return table_.size(); }
  const StorageStats& stats() const override { return stats_; }

 private:
  RobinHoodMap<ValueRecord> table_;
  StorageStats stats_;
};

}  // namespace das::store
