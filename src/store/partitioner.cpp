#include "store/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "store/hash_table.hpp"

namespace das::store {

namespace {

class ModuloPartitioner final : public Partitioner {
 public:
  explicit ModuloPartitioner(std::size_t servers) : servers_(servers) {
    DAS_CHECK(servers >= 1);
  }
  ServerId server_for(KeyId key) const override {
    // Mix first: raw key % N correlates with generator patterns.
    return static_cast<ServerId>(mix_key(key) % servers_);
  }
  std::vector<ServerId> replicas_for(KeyId key, std::size_t count) const override {
    count = std::min(count, servers_);
    std::vector<ServerId> out;
    out.reserve(count);
    const ServerId primary = server_for(key);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(static_cast<ServerId>((primary + i) % servers_));
    return out;
  }
  std::size_t server_count() const override { return servers_; }
  std::string describe() const override {
    return "modulo(" + std::to_string(servers_) + ")";
  }

 private:
  std::size_t servers_;
};

}  // namespace

PartitionerPtr make_modulo_partitioner(std::size_t servers) {
  return std::make_shared<ModuloPartitioner>(servers);
}

ConsistentHashRing::ConsistentHashRing(std::size_t servers,
                                       std::size_t vnodes_per_server,
                                       std::uint64_t seed)
    : servers_(servers), vnodes_(vnodes_per_server), seed_(seed) {
  DAS_CHECK(servers >= 1);
  DAS_CHECK(vnodes_per_server >= 1);
  ring_.reserve(servers * vnodes_per_server);
  for (std::size_t s = 0; s < servers; ++s) {
    std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ull * (s + 1));
    for (std::size_t v = 0; v < vnodes_per_server; ++v) {
      ring_.emplace_back(splitmix64(state), static_cast<ServerId>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ConsistentHashRing::lower_point(std::uint64_t h) const {
  // First ring point with hash >= h, wrapping to 0.
  const auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, 0});
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

ServerId ConsistentHashRing::server_for(KeyId key) const {
  return ring_[lower_point(mix_key(key))].server;
}

std::vector<ServerId> ConsistentHashRing::replicas_for(KeyId key,
                                                       std::size_t count) const {
  count = std::min(count, servers_);
  std::vector<ServerId> out;
  out.reserve(count);
  std::size_t idx = lower_point(mix_key(key));
  // Walk the ring clockwise collecting distinct servers.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < count; ++steps) {
    const ServerId s = ring_[(idx + steps) % ring_.size()].server;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

std::string ConsistentHashRing::describe() const {
  std::ostringstream os;
  os << "ring(servers=" << servers_ << ", vnodes=" << vnodes_ << ")";
  return os.str();
}

std::vector<double> ConsistentHashRing::ownership() const {
  std::vector<double> share(servers_, 0.0);
  const double full = std::pow(2.0, 64);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::uint64_t cur = ring_[i].hash;
    const std::uint64_t prev = (i == 0) ? ring_.back().hash : ring_[i - 1].hash;
    // Arc length ending at cur, owned by cur's server; wraps at i == 0.
    const double arc = (i == 0)
                           ? (static_cast<double>(cur) + (full - static_cast<double>(prev)))
                           : static_cast<double>(cur - prev);
    share[ring_[i].server] += arc / full;
  }
  return share;
}

ConsistentHashRing ConsistentHashRing::with_servers(std::size_t servers) const {
  return ConsistentHashRing{servers, vnodes_, seed_};
}

PartitionerPtr make_consistent_hash_ring(std::size_t servers,
                                         std::size_t vnodes_per_server,
                                         std::uint64_t seed) {
  return std::make_shared<ConsistentHashRing>(servers, vnodes_per_server, seed);
}

}  // namespace das::store
