#include "store/lsm_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace das::store {

void ServiceTimeProvider::drain_transitions(std::vector<StoreTransition>& out) {
  out.insert(out.end(), transitions_.begin(), transitions_.end());
  transitions_.clear();
}

void ServiceTimeProvider::record(StoreTransitionKind kind, SimTime at,
                                 double debt_bytes) {
  if (!record_transitions_) return;
  transitions_.push_back(StoreTransition{kind, at, debt_bytes});
}

void LsmOptions::validate() const {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("LsmOptions: " + what);
  };
  if (per_op_overhead_us < 0) reject("per_op_overhead_us must be >= 0");
  if (service_bytes_per_us <= 0) reject("service_bytes_per_us must be > 0");
  if (memtable_bytes <= 0) reject("memtable_bytes must be > 0");
  if (entry_overhead_bytes < 0) reject("entry_overhead_bytes must be >= 0");
  if (l0_compaction_trigger == 0) reject("l0_compaction_trigger must be >= 1");
  if (compaction_bytes_per_us <= 0) reject("compaction_bytes_per_us must be > 0");
  if (compaction_jitter < 0 || compaction_jitter >= 1.0) {
    reject("compaction_jitter must be in [0, 1)");
  }
  if (compaction_capacity_factor <= 0 || compaction_capacity_factor > 1.0) {
    reject("compaction_capacity_factor must be in (0, 1]");
  }
  if (stall_debt_bytes <= 0) reject("stall_debt_bytes must be > 0");
  if (stall_write_multiplier < 1.0) reject("stall_write_multiplier must be >= 1");
  if (memtable_read_factor <= 0 || memtable_read_factor > 1.0) {
    reject("memtable_read_factor must be in (0, 1]");
  }
  if (level_read_step < 0) reject("level_read_step must be >= 0");
  if (max_read_levels == 0) reject("max_read_levels must be >= 1");
}

LsmModel::LsmModel(LsmOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  options_.validate();
}

std::size_t LsmModel::read_levels() const {
  // Sorted-tree depth grows logarithmically in data at rest (fanout ~4 per
  // tier at simulation scale); L0 runs each add a full extra run to search.
  std::size_t sorted = 0;
  if (total_bytes_ > 0) {
    const double tiers =
        std::log2(1.0 + total_bytes_ / options_.memtable_bytes) / 2.0;
    sorted = 1 + static_cast<std::size_t>(tiers);
  }
  const std::size_t levels = l0_runs_ + sorted;
  return levels < options_.max_read_levels ? levels : options_.max_read_levels;
}

double LsmModel::base_cost_us(const OpCostQuery& q, SimTime now) {
  advance_to(now);
  const double byte_cost =
      static_cast<double>(q.size_bytes) / options_.service_bytes_per_us;
  if (q.is_write) {
    // Appends are sequential: the base write is the nominal byte cost; the
    // write controller amplifies it while compaction debt is stalling.
    double cost = options_.per_op_overhead_us + byte_cost;
    if (stalled_) {
      cost *= options_.stall_write_multiplier;
      ++stats_.stalled_write_ops;
    }
    return cost;
  }
  if (memtable_keys_.contains(q.key)) {
    ++stats_.memtable_hits;
    return options_.per_op_overhead_us +
           byte_cost * options_.memtable_read_factor;
  }
  ++stats_.level_reads;
  const double walk =
      1.0 + options_.level_read_step * static_cast<double>(read_levels());
  return options_.per_op_overhead_us + byte_cost * walk;
}

double LsmModel::capacity_factor(SimTime now) {
  advance_to(now);
  return compacting_ && options_.interference
             ? options_.compaction_capacity_factor
             : 1.0;
}

void LsmModel::on_op_complete(const OpCostQuery& q, SimTime now) {
  advance_to(now);
  if (!q.is_write) return;
  memtable_fill_ += static_cast<double>(q.size_bytes) +
                    options_.entry_overhead_bytes;
  memtable_keys_.insert(q.key);
  if (memtable_fill_ >= options_.memtable_bytes) flush_memtable(now);
}

void LsmModel::flush_memtable(SimTime now) {
  ++stats_.flushes;
  stats_.bytes_flushed += memtable_fill_;
  ++l0_runs_;
  debt_bytes_ += memtable_fill_;
  total_bytes_ += memtable_fill_;
  memtable_fill_ = 0;
  memtable_keys_.clear();
  record(StoreTransitionKind::kFlush, now, debt_bytes_);
  maybe_start_compaction(now);
  update_stall(now);
}

void LsmModel::maybe_start_compaction(SimTime at) {
  if (compacting_ || l0_runs_ < options_.l0_compaction_trigger) return;
  compacting_ = true;
  compaction_started_ = at;
  compaction_drain_bytes_ = debt_bytes_;
  compaction_drain_runs_ = l0_runs_;
  const double jitter = options_.compaction_jitter > 0
                            ? rng_.uniform(1.0 - options_.compaction_jitter,
                                           1.0 + options_.compaction_jitter)
                            : 1.0;
  const double duration =
      compaction_drain_bytes_ / options_.compaction_bytes_per_us * jitter;
  compaction_end_ = at + duration;
  ++stats_.compactions;
  record(StoreTransitionKind::kCompactionStart, at, debt_bytes_);
}

void LsmModel::update_stall(SimTime at) {
  if (!options_.interference) return;
  if (!stalled_ && debt_bytes_ >= options_.stall_debt_bytes) {
    stalled_ = true;
    stall_started_ = at;
    ++stats_.write_stalls;
    record(StoreTransitionKind::kWriteStallStart, at, debt_bytes_);
  } else if (stalled_ && debt_bytes_ < options_.stall_debt_bytes / 2.0) {
    // Hysteresis: leave the stall only once half the trigger debt drained,
    // so a write burst at the boundary does not flap the controller.
    stalled_ = false;
    stats_.write_stall_us += at - stall_started_;
    record(StoreTransitionKind::kWriteStallEnd, at, debt_bytes_);
  }
}

void LsmModel::advance_to(SimTime now) {
  while (compacting_ && now >= compaction_end_) {
    const SimTime ended = compaction_end_;
    stats_.compaction_busy_us += ended - compaction_started_;
    stats_.bytes_compacted += compaction_drain_bytes_;
    debt_bytes_ -= compaction_drain_bytes_;
    if (debt_bytes_ < 0) debt_bytes_ = 0;
    l0_runs_ = l0_runs_ >= compaction_drain_runs_
                   ? l0_runs_ - compaction_drain_runs_
                   : 0;
    compacting_ = false;
    compaction_drain_bytes_ = 0;
    compaction_drain_runs_ = 0;
    ++compactions_completed_;
    record(StoreTransitionKind::kCompactionEnd, ended, debt_bytes_);
    update_stall(ended);
    // Runs flushed while the window was open may already warrant the next
    // window, starting back-to-back at the previous window's end time.
    maybe_start_compaction(ended);
  }
}

void LsmModel::on_crash(SimTime now) {
  advance_to(now);
  // The memtable is volatile: its contents are lost with the process.
  memtable_fill_ = 0;
  memtable_keys_.clear();
  if (compacting_) {
    // The background job dies mid-rewrite; its input runs and debt remain
    // for the post-recovery instance to compact again.
    stats_.compaction_busy_us += now - compaction_started_;
    compacting_ = false;
    compaction_drain_bytes_ = 0;
    compaction_drain_runs_ = 0;
    record(StoreTransitionKind::kCompactionEnd, now, debt_bytes_);
  }
  if (stalled_) {
    stalled_ = false;
    stats_.write_stall_us += now - stall_started_;
    record(StoreTransitionKind::kWriteStallEnd, now, debt_bytes_);
  }
}

void LsmModel::finalize(SimTime now) {
  advance_to(now);
  if (compacting_ && now > compaction_started_) {
    // Close the open window in the stats only; rebase so finalize is
    // idempotent and a later advance does not double-count.
    stats_.compaction_busy_us += now - compaction_started_;
    compaction_started_ = now;
  }
  if (stalled_ && now > stall_started_) {
    stats_.write_stall_us += now - stall_started_;
    stall_started_ = now;
  }
}

StoreGauges LsmModel::gauges() const {
  StoreGauges g;
  g.memtable_fill_bytes = memtable_fill_;
  g.compaction_debt_bytes = debt_bytes_;
  g.l0_runs = l0_runs_;
  g.compacting = compacting_;
  g.stalled = stalled_;
  return g;
}

void LsmModel::check_invariants() const {
  DAS_AUDIT(memtable_fill_ >= 0, "memtable fill negative");
  DAS_AUDIT(memtable_fill_ < options_.memtable_bytes,
            "memtable fill at or above flush threshold between ops");
  DAS_AUDIT(debt_bytes_ >= 0, "compaction debt negative");
  DAS_AUDIT(total_bytes_ >= 0, "total bytes negative");
  if (compacting_) {
    DAS_AUDIT(compaction_end_ >= compaction_started_,
              "compaction window ends before it starts");
    DAS_AUDIT(compaction_drain_bytes_ <= debt_bytes_ + 1e-6,
              "compaction draining more than outstanding debt");
    DAS_AUDIT(compaction_drain_runs_ <= l0_runs_,
              "compaction consuming more runs than exist");
    DAS_AUDIT(compaction_drain_runs_ >= options_.l0_compaction_trigger,
              "compaction started below the L0 trigger");
  } else {
    DAS_AUDIT(compaction_drain_bytes_ == 0 && compaction_drain_runs_ == 0,
              "idle compaction holds drain state");
  }
  DAS_AUDIT(!stalled_ || options_.interference,
            "write stall active with interference disabled");
  DAS_AUDIT(stats_.bytes_compacted <= stats_.bytes_flushed + 1e-6,
            "compacted more bytes than were ever flushed");
  // Completed windows only: a crash-interrupted compaction leaves its runs
  // behind, so the same flushed runs legitimately fund another start.
  DAS_AUDIT(stats_.flushes >=
                compactions_completed_ * options_.l0_compaction_trigger,
            "more completed compactions than flushed runs allow");
  DAS_AUDIT(compactions_completed_ <= stats_.compactions,
            "completed more compactions than were started");
}

}  // namespace das::store
