// Storage-aware service-time model: an LSM write/read cost engine.
//
// The simulator's synthetic mode charges every operation the client-computed
// nominal demand (overhead + bytes/rate). This subsystem grounds service
// time in storage behaviour instead: a per-server `LsmModel` tracks memtable
// fill, flush triggers, leveled compaction debt and background compaction
// windows, and prices each operation from that state —
//
//   * size-dependent reads: a memtable hit pays a fraction of the byte cost,
//     a level walk pays a surcharge per run/level searched;
//   * write-stall amplification: when compaction debt exceeds the stall
//     threshold, writes are slowed until the debt drains (RocksDB's
//     write-controller behaviour);
//   * compaction capacity dips: while a background compaction window is
//     open, the server's effective speed is multiplied by a factor < 1,
//     composed with the fault-plan slowdown through the single audited
//     Server::effective_speed() path.
//
// Schedulers and clients never see this model directly — only through the
// piggybacked mu_hat/backlog feedback, exactly like every other capacity
// fluctuation. The state machine is deterministic: it advances lazily on the
// server's dispatch/completion events (no simulator events of its own), and
// the only randomness is the seeded jitter on compaction window lengths.
// The cost structure mimics the NVM/flash behaviour of the IsoKV and DapDB
// reference file sets (see /root/related): cheap in-memory hits, costlier
// multi-run walks, background rewrites that steal device bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/invariant.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace das::store {

/// One operation's cost query, built by the server from the op message and
/// its own storage engine (the value size of a read comes from the stored
/// record, not from the client's estimate).
struct OpCostQuery {
  KeyId key = 0;
  bool is_write = false;
  /// Value bytes read or written (0 for a miss).
  Bytes size_bytes = 0;
  /// The client-side demand model's estimate (overhead + bytes/rate), kept
  /// for providers that want to price relative to the synthetic baseline.
  double nominal_demand_us = 0;
};

/// Store-model state transitions surfaced for tracing (compaction/stall
/// spans, flush instants). Only recorded when a tracer is attached — see
/// set_record_transitions — so untraced runs never touch the buffer.
enum class StoreTransitionKind : std::uint8_t {
  kCompactionStart,
  kCompactionEnd,
  kWriteStallStart,
  kWriteStallEnd,
  kFlush,
};

struct StoreTransition {
  StoreTransitionKind kind = StoreTransitionKind::kFlush;
  SimTime at = 0;
  /// Compaction debt outstanding at the transition (bytes).
  double debt_bytes = 0;
};

/// Counters a store model accumulates over a run (all zero for synthetic).
struct StoreModelStats {
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  /// Stall episodes entered / write ops served at stall-amplified cost.
  std::uint64_t write_stalls = 0;
  std::uint64_t stalled_write_ops = 0;
  std::uint64_t memtable_hits = 0;
  std::uint64_t level_reads = 0;
  double bytes_flushed = 0;
  double bytes_compacted = 0;
  /// Total time spent inside compaction windows / write-stall episodes (µs).
  double compaction_busy_us = 0;
  double write_stall_us = 0;
};

/// Instantaneous gauges for the sampled counter track in traces.
struct StoreGauges {
  double memtable_fill_bytes = 0;
  double compaction_debt_bytes = 0;
  std::size_t l0_runs = 0;
  bool compacting = false;
  bool stalled = false;
};

/// What the Server consults for each operation's base cost and for the
/// storage component of its effective speed. Implementations advance their
/// state lazily from the timestamps they are handed; they own no simulator
/// events and draw randomness only from their own seeded stream.
class ServiceTimeProvider : public Auditable {
 public:
  ~ServiceTimeProvider() override = default;

  /// Base cost of `q` at nominal server speed (µs), sampled at dispatch.
  virtual double base_cost_us(const OpCostQuery& q, SimTime now) = 0;

  /// Multiplicative capacity factor in (0, 1] at `now`; composed into
  /// Server::effective_speed() alongside the fault-plan slowdown.
  virtual double capacity_factor(SimTime now) = 0;

  /// An operation finished service; writes advance the memtable/flush state.
  virtual void on_op_complete(const OpCostQuery& q, SimTime now) = 0;

  /// Fail-stop crash: volatile state (memtable) is lost, background work is
  /// interrupted.
  virtual void on_crash(SimTime now) = 0;

  /// Run teardown: close open windows in the stats so busy-time accounting
  /// covers the whole run. Idempotent.
  virtual void finalize(SimTime now) = 0;

  virtual StoreModelStats stats() const = 0;
  virtual StoreGauges gauges() const = 0;

  /// Transition recording is off by default (zero overhead untraced); the
  /// server enables it when a tracer attaches.
  void set_record_transitions(bool on) { record_transitions_ = on; }
  /// Moves the recorded transitions into `out` (appended) and clears the
  /// internal buffer.
  void drain_transitions(std::vector<StoreTransition>& out);

 protected:
  void record(StoreTransitionKind kind, SimTime at, double debt_bytes);

 private:
  bool record_transitions_ = false;
  std::vector<StoreTransition> transitions_;
};

using ServiceTimeProviderPtr = std::unique_ptr<ServiceTimeProvider>;

struct LsmOptions {
  /// Service-model anchors, mirrored from the cluster config so LSM costs
  /// are expressed in the same currency as the synthetic demand model.
  double per_op_overhead_us = 20.0;
  double service_bytes_per_us = 50.0;

  /// Memtable flushes when fill (value bytes + per-entry overhead) reaches
  /// this. Sized for simulation-scale traffic, not production heaps.
  double memtable_bytes = 64.0 * 1024.0;
  double entry_overhead_bytes = 32.0;

  /// Compaction starts once this many flushed L0 runs accumulate.
  std::size_t l0_compaction_trigger = 2;
  /// Background compaction drains debt at this rate; the window length is
  /// debt/rate with ±`compaction_jitter` seeded jitter.
  double compaction_bytes_per_us = 16.0;
  double compaction_jitter = 0.1;
  /// Effective-speed multiplier while a compaction window is open.
  double compaction_capacity_factor = 0.6;

  /// Writes are amplified by `stall_write_multiplier` while compaction debt
  /// sits at or above `stall_debt_bytes` (cleared when the debt drains).
  double stall_debt_bytes = 256.0 * 1024.0;
  double stall_write_multiplier = 4.0;

  /// Read pricing: a memtable hit pays this fraction of the byte cost; a
  /// level walk pays (1 + level_read_step × runs/levels searched), capped at
  /// `max_read_levels` levels.
  double memtable_read_factor = 0.25;
  double level_read_step = 0.3;
  std::size_t max_read_levels = 8;

  /// false = the flush/compaction state machine still runs (reads stay
  /// size-dependent) but compaction windows cost nothing and writes never
  /// stall — the "compaction disabled" control arm of E20.
  bool interference = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class LsmModel final : public ServiceTimeProvider {
 public:
  /// `seed` feeds the jitter stream; two models with the same options, seed
  /// and op sequence produce bit-identical costs and windows.
  LsmModel(LsmOptions options, std::uint64_t seed);

  double base_cost_us(const OpCostQuery& q, SimTime now) override;
  double capacity_factor(SimTime now) override;
  void on_op_complete(const OpCostQuery& q, SimTime now) override;
  void on_crash(SimTime now) override;
  void finalize(SimTime now) override;
  StoreModelStats stats() const override { return stats_; }
  StoreGauges gauges() const override;

  /// Memtable fill below capacity, nonnegative debt, well-ordered compaction
  /// window, stall only with interference enabled, stats coherence.
  void check_invariants() const override;

  // Introspection for tests.
  const LsmOptions& options() const { return options_; }
  double memtable_fill_bytes() const { return memtable_fill_; }
  std::size_t l0_runs() const { return l0_runs_; }
  double compaction_debt_bytes() const { return debt_bytes_; }
  double total_bytes() const { return total_bytes_; }
  bool compacting() const { return compacting_; }
  bool stalled() const { return stalled_; }
  /// Runs/levels a non-memtable read searches right now.
  std::size_t read_levels() const;

 private:
  /// Lazily closes compaction windows that ended at or before `now` (and any
  /// back-to-back successor windows).
  void advance_to(SimTime now);
  void flush_memtable(SimTime now);
  void maybe_start_compaction(SimTime at);
  void update_stall(SimTime at);

  LsmOptions options_;
  Rng rng_;

  double memtable_fill_ = 0;
  /// Keys resident in the memtable (written since the last flush): these
  /// reads are hits that skip the level walk.
  FlatSet<KeyId> memtable_keys_;
  std::size_t l0_runs_ = 0;
  double debt_bytes_ = 0;
  /// Data at rest across all levels; drives the sorted-tree depth term.
  double total_bytes_ = 0;

  bool compacting_ = false;
  SimTime compaction_started_ = 0;
  SimTime compaction_end_ = 0;
  /// Debt and runs the open window will clear when it closes.
  double compaction_drain_bytes_ = 0;
  std::size_t compaction_drain_runs_ = 0;

  bool stalled_ = false;
  SimTime stall_started_ = 0;

  /// Windows that ran to completion (stats_.compactions counts starts; a
  /// crash can interrupt a window, leaving its runs to be compacted again).
  std::uint64_t compactions_completed_ = 0;

  StoreModelStats stats_;
};

}  // namespace das::store
