// Key-to-server placement.
//
// The cluster maps every key to an owning server (and optionally a replica
// set). Two strategies: a consistent-hash ring with virtual nodes (the
// production-realistic default — bounded imbalance, minimal disruption on
// membership change) and a modulo partitioner (exact balance, used by tests
// and by experiments that want to isolate scheduling effects from placement
// skew).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace das::store {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Owning server for `key`.
  virtual ServerId server_for(KeyId key) const = 0;
  /// First `count` distinct servers in placement preference order (primary
  /// first). count is clamped to the cluster size.
  virtual std::vector<ServerId> replicas_for(KeyId key, std::size_t count) const = 0;
  virtual std::size_t server_count() const = 0;
  virtual std::string describe() const = 0;
};

using PartitionerPtr = std::shared_ptr<const Partitioner>;

/// key % N placement. Perfectly balanced for uniform keys; no membership
/// flexibility.
PartitionerPtr make_modulo_partitioner(std::size_t servers);

/// Consistent-hash ring with `vnodes` virtual nodes per server.
class ConsistentHashRing final : public Partitioner {
 public:
  ConsistentHashRing(std::size_t servers, std::size_t vnodes_per_server,
                     std::uint64_t seed = 0x5EED);

  ServerId server_for(KeyId key) const override;
  std::vector<ServerId> replicas_for(KeyId key, std::size_t count) const override;
  std::size_t server_count() const override { return servers_; }
  std::string describe() const override;

  /// Fraction of the ring owned by each server (sums to 1); for balance tests.
  std::vector<double> ownership() const;

  /// Builds a new ring with one more/fewer server, for disruption tests.
  ConsistentHashRing with_servers(std::size_t servers) const;

 private:
  struct Point {
    std::uint64_t hash;
    ServerId server;
    bool operator<(const Point& o) const { return hash < o.hash; }
  };

  std::size_t lower_point(std::uint64_t h) const;

  std::size_t servers_;
  std::size_t vnodes_;
  std::uint64_t seed_;
  std::vector<Point> ring_;  // sorted by hash
};

PartitionerPtr make_consistent_hash_ring(std::size_t servers,
                                         std::size_t vnodes_per_server,
                                         std::uint64_t seed = 0x5EED);

}  // namespace das::store
