#include "store/log_engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace das::store {

LogStructuredEngine::LogStructuredEngine(Options options) : options_(options) {
  DAS_CHECK(options_.segment_capacity >= 1);
  DAS_CHECK(options_.compact_at_segments >= 2);
  active_.entries.reserve(options_.segment_capacity);
}

const LogStructuredEngine::Entry& LogStructuredEngine::at(Location loc) const {
  const Segment& seg = loc.segment == kActive ? active_ : sealed_[loc.segment];
  return seg.entries[loc.offset];
}

void LogStructuredEngine::append(KeyId key, const ValueRecord& record,
                                 bool tombstone) {
  active_.entries.emplace_back(key, record, tombstone);
  index_.put(key, Location{kActive, static_cast<std::uint32_t>(
                                        active_.entries.size() - 1)});
  seal_active_if_full();
}

void LogStructuredEngine::seal_active_if_full() {
  if (active_.entries.size() < options_.segment_capacity) return;
  // Re-point index entries of the sealed segment from kActive to its final
  // slot (only entries still referencing the active segment are live here).
  const auto seg_id = static_cast<std::uint32_t>(sealed_.size());
  for (std::uint32_t off = 0; off < active_.entries.size(); ++off) {
    const KeyId key = active_.entries[off].key;
    if (Location* loc = index_.find(key);
        loc && loc->segment == kActive && loc->offset == off) {
      *loc = Location{seg_id, off};
    }
  }
  sealed_.push_back(std::move(active_));
  active_ = Segment{};
  active_.entries.reserve(options_.segment_capacity);
  ++log_stats_.segments_sealed;
  maybe_compact();
}

void LogStructuredEngine::maybe_compact() {
  if (sealed_.size() < options_.compact_at_segments) return;
  ++log_stats_.compactions;
  // Rewrite live entries (those the index still points to) into fresh
  // sealed segments, preserving order; everything else is dead.
  std::vector<Segment> fresh;
  fresh.emplace_back();
  fresh.back().entries.reserve(options_.segment_capacity);
  for (std::uint32_t seg = 0; seg < sealed_.size(); ++seg) {
    for (std::uint32_t off = 0; off < sealed_[seg].entries.size(); ++off) {
      const Entry& entry = sealed_[seg].entries[off];
      const Location* loc = index_.find(entry.key);
      const bool live = loc && loc->segment == seg && loc->offset == off;
      if (!live || entry.tombstone) {
        ++log_stats_.entries_dropped;
        continue;
      }
      if (fresh.back().entries.size() == options_.segment_capacity) {
        fresh.emplace_back();
        fresh.back().entries.reserve(options_.segment_capacity);
      }
      fresh.back().entries.push_back(entry);
      index_.put(entry.key,
                 Location{static_cast<std::uint32_t>(fresh.size() - 1),
                          static_cast<std::uint32_t>(fresh.back().entries.size() - 1)});
      ++log_stats_.entries_rewritten;
    }
  }
  // Tombstoned keys whose newest entry was in a sealed segment are gone from
  // storage now; their index entries (pointing at dropped tombstones) were
  // already erased at erase() time, so no index fixup is needed here.
  sealed_ = std::move(fresh);
}

std::uint64_t LogStructuredEngine::put(KeyId key, Bytes size, SimTime now) {
  ++stats_.puts;
  ValueRecord record;
  record.size = size;
  record.created_at = now;
  record.updated_at = now;
  if (const Location* loc = index_.find(key)) {
    const Entry& previous = at(*loc);
    record.version = previous.record.version + 1;
    record.created_at = previous.record.created_at;
    stats_.resident_bytes -= previous.record.size;
    ++stats_.updates;
  } else {
    record.version = 1;
    ++stats_.inserts;
    ++live_keys_;
  }
  stats_.resident_bytes += size;
  append(key, record, false);
  return record.version;
}

std::optional<ValueRecord> LogStructuredEngine::get(KeyId key, SimTime) {
  ++stats_.gets;
  if (const Location* loc = index_.find(key)) {
    ++stats_.hits;
    return at(*loc).record;
  }
  return std::nullopt;
}

const ValueRecord* LogStructuredEngine::peek(KeyId key) const {
  const Location* loc = index_.find(key);
  return loc ? &at(*loc).record : nullptr;
}

bool LogStructuredEngine::erase(KeyId key) {
  const Location* loc = index_.find(key);
  if (!loc) return false;
  ValueRecord dead = at(*loc).record;
  stats_.resident_bytes -= dead.size;
  ++stats_.deletes;
  --live_keys_;
  // A tombstone records the deletion for recovery; the index entry goes away
  // immediately so reads miss.
  append(key, dead, true);
  index_.erase(key);
  return true;
}

std::size_t LogStructuredEngine::total_entries() const {
  std::size_t total = active_.entries.size();
  for (const Segment& seg : sealed_) total += seg.entries.size();
  return total;
}

void LogStructuredEngine::recover() {
  index_ = RobinHoodMap<Location>{};
  live_keys_ = 0;
  const auto replay = [&](std::uint32_t seg_id, const Segment& seg) {
    for (std::uint32_t off = 0; off < seg.entries.size(); ++off) {
      const Entry& entry = seg.entries[off];
      const bool existed = index_.find(entry.key) != nullptr;
      if (entry.tombstone) {
        if (existed) {
          index_.erase(entry.key);
          --live_keys_;
        }
        continue;
      }
      if (!existed) ++live_keys_;
      index_.put(entry.key, Location{seg_id, off});
    }
  };
  for (std::uint32_t seg = 0; seg < sealed_.size(); ++seg) replay(seg, sealed_[seg]);
  replay(kActive, active_);
}

}  // namespace das::store
