#include "store/storage_engine.hpp"

namespace das::store {

std::uint64_t StorageEngine::put(KeyId key, Bytes size, SimTime now) {
  ++stats_.puts;
  if (ValueRecord* existing = table_.find(key)) {
    stats_.resident_bytes -= existing->size;
    stats_.resident_bytes += size;
    existing->size = size;
    existing->updated_at = now;
    ++existing->version;
    ++stats_.updates;
    return existing->version;
  }
  ValueRecord rec;
  rec.size = size;
  rec.version = 1;
  rec.created_at = now;
  rec.updated_at = now;
  table_.put(key, rec);
  stats_.resident_bytes += size;
  ++stats_.inserts;
  return 1;
}

std::optional<ValueRecord> StorageEngine::get(KeyId key, SimTime now) {
  (void)now;
  ++stats_.gets;
  if (const ValueRecord* rec = table_.find(key)) {
    ++stats_.hits;
    return *rec;
  }
  return std::nullopt;
}

bool StorageEngine::erase(KeyId key) {
  if (auto removed = table_.erase(key)) {
    stats_.resident_bytes -= removed->size;
    ++stats_.deletes;
    return true;
  }
  return false;
}

}  // namespace das::store
