#include "common/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace das {

namespace {

class ConstantDist final : public RealDistribution {
 public:
  explicit ConstantDist(double v) : v_(v) { DAS_CHECK(v >= 0); }
  double sample(Rng&) const override { return v_; }
  double mean() const override { return v_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << v_ << ")";
    return os.str();
  }

 private:
  double v_;
};

class UniformRealDist final : public RealDistribution {
 public:
  UniformRealDist(double lo, double hi) : lo_(lo), hi_(hi) { DAS_CHECK(lo <= hi); }
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << ")";
    return os.str();
  }

 private:
  double lo_, hi_;
};

class ExponentialDist final : public RealDistribution {
 public:
  explicit ExponentialDist(double mean) : mean_(mean) { DAS_CHECK(mean > 0); }
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "exp(mean=" << mean_ << ")";
    return os.str();
  }

 private:
  double mean_;
};

class LognormalDist final : public RealDistribution {
 public:
  LognormalDist(double target_mean, double sigma) : mean_(target_mean), sigma_(sigma) {
    DAS_CHECK(target_mean > 0);
    DAS_CHECK(sigma >= 0);
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
    mu_ = std::log(target_mean) - 0.5 * sigma * sigma;
  }
  double sample(Rng& rng) const override { return rng.lognormal(mu_, sigma_); }
  double mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(mean=" << mean_ << ", sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  double mean_, sigma_, mu_;
};

class GeneralizedParetoDist final : public RealDistribution {
 public:
  GeneralizedParetoDist(double loc, double scale, double shape, double cap)
      : loc_(loc), scale_(scale), shape_(shape), cap_(cap) {
    DAS_CHECK(scale > 0);
    DAS_CHECK(shape > 0);
    DAS_CHECK(cap > loc);
    // Mean of the capped variable min(X, cap) computed by integrating the
    // survival function: E = loc + ∫_loc^cap S(x) dx with
    // S(x) = (1 + shape*(x-loc)/scale)^(-1/shape).
    const double a = 1.0 - 1.0 / shape_;
    const double zcap = 1.0 + shape_ * (cap_ - loc_) / scale_;
    // ∫ (1+k t/s)^(-1/k) dt from 0 to (cap-loc) = s/(k a) [z^a - 1] with
    // a = 1 - 1/k  (valid for shape != 1; shape is < 1 in practice).
    double integral;
    if (std::abs(a) < 1e-12) {
      integral = scale_ / shape_ * std::log(zcap);
    } else {
      integral = scale_ / (shape_ * a) * (std::pow(zcap, a) - 1.0);
    }
    mean_ = loc_ + integral;
  }

  double sample(Rng& rng) const override {
    const double u = rng.next_double();  // in [0,1)
    const double x = loc_ + scale_ * (std::pow(1.0 - u, -shape_) - 1.0) / shape_;
    return std::min(x, cap_);
  }
  double mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "gpareto(loc=" << loc_ << ", scale=" << scale_ << ", shape=" << shape_
       << ", cap=" << cap_ << ")";
    return os.str();
  }

 private:
  double loc_, scale_, shape_, cap_, mean_;
};

class FixedInt final : public IntDistribution {
 public:
  explicit FixedInt(std::uint32_t k) : k_(k) { DAS_CHECK(k >= 1); }
  std::uint32_t sample(Rng&) const override { return k_; }
  double mean() const override { return k_; }
  std::string describe() const override { return "fixed(" + std::to_string(k_) + ")"; }

 private:
  std::uint32_t k_;
};

class UniformInt final : public IntDistribution {
 public:
  UniformInt(std::uint32_t lo, std::uint32_t hi) : lo_(lo), hi_(hi) {
    DAS_CHECK(lo >= 1);
    DAS_CHECK(lo <= hi);
  }
  std::uint32_t sample(Rng& rng) const override {
    return lo_ + static_cast<std::uint32_t>(rng.next_below(hi_ - lo_ + 1));
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string describe() const override {
    return "uniform_int(" + std::to_string(lo_) + ", " + std::to_string(hi_) + ")";
  }

 private:
  std::uint32_t lo_, hi_;
};

class GeometricInt final : public IntDistribution {
 public:
  GeometricInt(double p, std::uint32_t cap) : p_(p), cap_(cap) {
    DAS_CHECK(p > 0 && p <= 1);
    DAS_CHECK(cap >= 1);
    // Mean of min(G, cap) where G is shifted-geometric on {1,2,...}:
    // E = sum_{j=0}^{cap-1} P(G > j) = sum_{j=0}^{cap-1} (1-p)^j.
    const double q = 1.0 - p;
    mean_ = (q >= 1.0) ? cap : (1.0 - std::pow(q, cap)) / p;
  }
  std::uint32_t sample(Rng& rng) const override {
    // Inversion: G = 1 + floor(ln U / ln(1-p)); careful at p == 1.
    if (p_ >= 1.0) return 1;
    const double u = 1.0 - rng.next_double();  // (0,1]
    const double g = 1.0 + std::floor(std::log(u) / std::log(1.0 - p_));
    return static_cast<std::uint32_t>(std::min<double>(g, cap_));
  }
  double mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "geometric(p=" << p_ << ", cap=" << cap_ << ")";
    return os.str();
  }

 private:
  double p_;
  std::uint32_t cap_;
  double mean_;
};

class ZipfInt final : public IntDistribution {
 public:
  ZipfInt(std::uint32_t n, double theta) : gen_(n, theta) {
    double m = 0;
    for (std::uint64_t r = 0; r < n; ++r) m += static_cast<double>(r + 1) * gen_.pmf(r);
    mean_ = m;
  }
  std::uint32_t sample(Rng& rng) const override {
    return static_cast<std::uint32_t>(gen_.sample(rng) + 1);
  }
  double mean() const override { return mean_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "zipf_int(n=" << gen_.universe() << ", theta=" << gen_.theta() << ")";
    return os.str();
  }

 private:
  ZipfGenerator gen_;
  double mean_;
};

class BimodalInt final : public IntDistribution {
 public:
  BimodalInt(std::uint32_t small, std::uint32_t large, double p_large)
      : small_(small), large_(large), p_(p_large) {
    DAS_CHECK(small >= 1);
    DAS_CHECK(large >= small);
    DAS_CHECK(p_large >= 0 && p_large <= 1);
  }
  std::uint32_t sample(Rng& rng) const override { return rng.chance(p_) ? large_ : small_; }
  double mean() const override { return p_ * large_ + (1 - p_) * small_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "bimodal(" << small_ << "/" << large_ << ", p_large=" << p_ << ")";
    return os.str();
  }

 private:
  std::uint32_t small_, large_;
  double p_;
};

/// Real-valued two-point mixture; the canonical "mostly small values, rare
/// large ones" shape for KV value sizes (drives size-dependent store costs).
class BimodalReal final : public RealDistribution {
 public:
  BimodalReal(double small, double large, double p_large)
      : small_(small), large_(large), p_(p_large) {
    DAS_CHECK(small > 0);
    DAS_CHECK(large >= small);
    DAS_CHECK(p_large >= 0 && p_large <= 1);
  }
  double sample(Rng& rng) const override { return rng.chance(p_) ? large_ : small_; }
  double mean() const override { return p_ * large_ + (1 - p_) * small_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "bimodal_real(" << small_ << "/" << large_ << ", p_large=" << p_ << ")";
    return os.str();
  }

 private:
  double small_, large_;
  double p_;
};

class DiscreteInt final : public IntDistribution {
 public:
  DiscreteInt(std::vector<std::uint32_t> values, std::vector<double> weights)
      : values_(std::move(values)) {
    DAS_CHECK(!values_.empty());
    DAS_CHECK(values_.size() == weights.size());
    double total = 0;
    for (double w : weights) {
      DAS_CHECK(w >= 0);
      total += w;
    }
    DAS_CHECK(total > 0);
    cdf_.reserve(weights.size());
    double acc = 0, m = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i] / total;
      cdf_.push_back(acc);
      m += values_[i] * weights[i] / total;
    }
    cdf_.back() = 1.0;
    mean_ = m;
  }
  std::uint32_t sample(Rng& rng) const override {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return values_[static_cast<std::size_t>(it - cdf_.begin())];
  }
  double mean() const override { return mean_; }
  std::string describe() const override {
    return "discrete(" + std::to_string(values_.size()) + " points)";
  }

 private:
  std::vector<std::uint32_t> values_;
  std::vector<double> cdf_;
  double mean_;
};

}  // namespace

RealDistPtr make_constant(double value) { return std::make_shared<ConstantDist>(value); }
RealDistPtr make_uniform_real(double lo, double hi) {
  return std::make_shared<UniformRealDist>(lo, hi);
}
RealDistPtr make_exponential(double mean) { return std::make_shared<ExponentialDist>(mean); }
RealDistPtr make_lognormal_mean(double mean, double sigma) {
  return std::make_shared<LognormalDist>(mean, sigma);
}
RealDistPtr make_generalized_pareto(double location, double scale, double shape,
                                    double cap) {
  return std::make_shared<GeneralizedParetoDist>(location, scale, shape, cap);
}
RealDistPtr make_bimodal_real(double small, double large, double p_large) {
  return std::make_shared<BimodalReal>(small, large, p_large);
}

IntDistPtr make_fixed_int(std::uint32_t k) { return std::make_shared<FixedInt>(k); }
IntDistPtr make_uniform_int(std::uint32_t lo, std::uint32_t hi) {
  return std::make_shared<UniformInt>(lo, hi);
}
IntDistPtr make_geometric(double p, std::uint32_t cap) {
  return std::make_shared<GeometricInt>(p, cap);
}
IntDistPtr make_zipf_int(std::uint32_t n, double theta) {
  return std::make_shared<ZipfInt>(n, theta);
}
IntDistPtr make_bimodal(std::uint32_t small, std::uint32_t large, double p_large) {
  return std::make_shared<BimodalInt>(small, large, p_large);
}
IntDistPtr make_discrete(std::vector<std::uint32_t> values, std::vector<double> weights) {
  return std::make_shared<DiscreteInt>(std::move(values), std::move(weights));
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  DAS_CHECK(n >= 1);
  DAS_CHECK(theta >= 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = acc;
  }
  norm_ = acc;
  for (auto& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::uint64_t rank) const {
  DAS_CHECK(rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * norm_);
}

}  // namespace das
