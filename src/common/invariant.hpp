// Runtime invariant auditing.
//
// Two layers, complementing the always-on DAS_CHECK preconditions in
// check.hpp:
//
//   DAS_DCHECK / DAS_DCHECK_MSG — inline hot-path assertions. Compiled out
//       entirely in Release builds (NDEBUG), active in Debug builds and in
//       every sanitizer build (the build system defines DAS_AUDIT_ENABLED=1
//       whenever DAS_SANITIZE is set). Use them where the check would cost
//       real time on the event-dispatch path.
//
//   DAS_AUDIT + Auditable — deep structural audits. An Auditable object can
//       verify its entire internal state (conservation counts, ordered-set /
//       map consistency, nonnegative remaining work) on demand;
//       check_invariants() throws AuditError on the first violation. Audits
//       run only when explicitly invoked — by tests, or by the simulator's
//       audit cadence (Simulator::set_audit_cadence) — so they stay active in
//       every build type and cost nothing between invocations.
//
// Violations throw (never abort): tests assert on them, and a corrupted
// simulation must fail loudly rather than report plausible-but-wrong numbers.
#pragma once

#include <stdexcept>
#include <string>

namespace das {

/// Thrown by check_invariants() / DAS_AUDIT on a violated invariant.
/// Derives from std::logic_error so existing DAS_CHECK handlers catch it too.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void audit_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace detail

/// Implemented by every component with auditable internal state: schedulers,
/// KeyedQueue, Server, and the Simulator itself. check_invariants() is const,
/// has no side effects, and throws AuditError on the first violation.
class Auditable {
 public:
  virtual ~Auditable() = default;
  virtual void check_invariants() const = 0;
};

}  // namespace das

/// Structural audit assertion: always active (audits only run when invoked).
#define DAS_AUDIT(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) ::das::detail::audit_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// DAS_AUDIT_ENABLED: 1 in Debug and sanitizer builds, 0 otherwise. The build
// system may force it (sanitizer presets define it regardless of build type).
#ifndef DAS_AUDIT_ENABLED
#ifdef NDEBUG
#define DAS_AUDIT_ENABLED 0
#else
#define DAS_AUDIT_ENABLED 1
#endif
#endif

#if DAS_AUDIT_ENABLED
#define DAS_DCHECK(expr) DAS_AUDIT(expr, "")
#define DAS_DCHECK_MSG(expr, msg) DAS_AUDIT(expr, msg)
#else
// Compiled out: the expression is parsed (stays warning-clean and cannot rot)
// but never evaluated, so side effects do not run in Release.
#define DAS_DCHECK(expr)              \
  do {                                \
    if (false) {                      \
      static_cast<void>(expr);        \
    }                                 \
  } while (false)
#define DAS_DCHECK_MSG(expr, msg)     \
  do {                                \
    if (false) {                      \
      static_cast<void>(expr);        \
      static_cast<void>(msg);         \
    }                                 \
  } while (false)
#endif
