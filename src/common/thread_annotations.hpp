// Clang Thread Safety Analysis annotations.
//
// The simulator proper is single-threaded by design, but real threads exist
// at the edges — the SweepRunner pool, the bench Collector's memo cache —
// and ROADMAP item 1 (parallel DES) will multiply them. These macros wire
// shared state to the mutex that guards it so `-Wthread-safety` turns lock
// discipline into a compile-time property: an unguarded access to a
// DAS_GUARDED_BY member, or a call to a DAS_REQUIRES function without the
// lock held, is a compiler error under the `thread-safety` CMake preset (and
// the CI static-analysis job). Under gcc (which has no such analysis) every
// macro expands to nothing, so the default build is unaffected.
//
// Clang's analysis only understands lock objects whose type is annotated as
// a capability; libstdc++'s std::mutex is not. das::Mutex / das::MutexLock
// below are zero-cost annotated wrappers over std::mutex / lock_guard — use
// them for any new mutex-protected state so the analysis can see it.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define DAS_TS_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define DAS_TS_HAS_ATTRIBUTE(x) 0
#endif

#if DAS_TS_HAS_ATTRIBUTE(capability)
#define DAS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DAS_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex", "role", ...).
#define DAS_CAPABILITY(x) DAS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define DAS_SCOPED_CAPABILITY DAS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define DAS_GUARDED_BY(x) DAS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself is not).
#define DAS_PT_GUARDED_BY(x) DAS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define DAS_ACQUIRE(...) DAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DAS_ACQUIRE_SHARED(...) \
  DAS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define DAS_RELEASE(...) DAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DAS_RELEASE_SHARED(...) \
  DAS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function may acquire the capability; `b` is the success return value.
#define DAS_TRY_ACQUIRE(...) \
  DAS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability to call this function.
#define DAS_REQUIRES(...) DAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DAS_REQUIRES_SHARED(...) \
  DAS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant lock, deadlock guard).
#define DAS_EXCLUDES(...) DAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define DAS_RETURN_CAPABILITY(x) DAS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use needs a comment saying why it is safe.
#define DAS_NO_THREAD_SAFETY_ANALYSIS \
  DAS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace das {

/// std::mutex with the capability annotation the analysis needs. Same size,
/// same codegen; lock()/unlock() forward directly.
class DAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DAS_ACQUIRE() { mu_.lock(); }
  void unlock() DAS_RELEASE() { mu_.unlock(); }
  bool try_lock() DAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable::wait and friends. The
  /// analysis cannot follow what happens to it; callers re-establish the
  /// capability with the macros at the call site.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over das::Mutex (std::lock_guard is invisible to the analysis).
class DAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DAS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DAS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace das
