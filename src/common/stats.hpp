// Streaming statistics and latency histograms.
//
// Experiments record millions of request completion times; we keep both a
// Welford accumulator (exact mean/variance) and a log-bucketed histogram
// (HDR-style, bounded relative error) so quantiles are cheap and memory is
// constant regardless of run length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace das {

/// Welford online accumulator: exact mean and unbiased variance in one pass.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Log-bucketed histogram over positive values with bounded relative error.
///
/// Buckets are geometric: value v lands in bucket floor(log(v/lo)/log(gamma)).
/// With the default growth of 1% the quantile error is <= 0.5%. Values below
/// `lo` clamp to bucket 0; values above `hi` clamp to the last bucket (and
/// are counted so the clamp is observable). Non-finite or negative samples
/// are rejected (DAS_CHECK): they indicate an upstream bug and would
/// otherwise corrupt every quantile by landing silently in bucket 0.
class LogHistogram {
 public:
  /// Range [lo, hi] in the caller's unit, growth factor per bucket (> 1).
  explicit LogHistogram(double lo = 1e-1, double hi = 1e9, double growth = 1.01);

  void add(double value);
  void merge(const LogHistogram& other);

  std::size_t count() const { return total_; }
  std::size_t overflow_count() const { return overflow_; }
  /// Quantile in [0, 1]; returns the geometric midpoint of the bucket that
  /// contains the q-th sample.
  ///
  /// Empty-input contract: querying an empty histogram throws
  /// std::logic_error with the fixed message "quantile of empty histogram"
  /// (wrapped in the DAS_CHECK prefix). There is no meaningful value to
  /// return — 0 would read as "zero latency" in a report — so the caller
  /// decides: LatencyRecorder::summary() checks count() first and pins every
  /// field of an empty summary to zero instead of querying.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  std::size_t bucket_count() const { return counts_.size(); }

 private:
  std::size_t bucket_for(double value) const;
  double bucket_mid(std::size_t b) const;

  double lo_, hi_, log_gamma_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  std::size_t overflow_ = 0;
};

/// One-line summary of a latency population; what benches print per row.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
};

/// Combined accumulator the metrics module feeds.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(double hi = 1e9);
  void add(double value);
  void merge(const LatencyRecorder& other);
  /// With no samples recorded, every field is zero (count included) — the
  /// pinned empty-input behavior; quantiles are never queried on an empty
  /// histogram.
  LatencySummary summary() const;
  const StreamingStats& moments() const { return stats_; }
  const LogHistogram& histogram() const { return hist_; }

 private:
  StreamingStats stats_;
  LogHistogram hist_;
};

}  // namespace das
