#include "common/flags.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "common/check.hpp"

namespace das {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  DAS_CHECK_MSG(!name.empty() && name[0] != '-', "flag names are bare words");
  Entry entry;
  entry.value = default_value;
  entry.default_value = default_value;
  entry.help = help;
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  DAS_CHECK_MSG(inserted, "duplicate flag definition: " + name);
}

bool Flags::parse(int argc, const char* const* argv, std::string* error) {
  DAS_CHECK(error != nullptr);
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::string name = token;
    std::optional<std::string> value;
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      value = token.substr(eq + 1);
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      *error = "unknown flag: --" + name;
      return false;
    }
    if (!value) {
      // Bare boolean form (--verbose) or --name value form.
      const bool looks_bool = it->second.default_value == "true" ||
                              it->second.default_value == "false";
      if (looks_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        *error = "flag --" + name + " needs a value";
        return false;
      }
    }
    if (it->second.explicitly_set) {
      // Silent last-one-wins makes a fat-fingered sweep command lie about
      // what it ran; reject instead, deterministically.
      *error = "duplicate flag: --" + name;
      return false;
    }
    it->second.value = *value;
    it->second.explicitly_set = true;
  }
  return true;
}

bool Flags::has(const std::string& name) const { return entries_.contains(name); }

bool Flags::set_on_command_line(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.explicitly_set;
}

std::string Flags::get_string(const std::string& name) const {
  const auto it = entries_.find(name);
  DAS_CHECK_MSG(it != entries_.end(), "undeclared flag: " + name);
  return it->second.value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  DAS_CHECK_MSG(pos == v.size(), "flag --" + name + " is not an integer: " + v);
  return out;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  DAS_CHECK_MSG(pos == v.size(), "flag --" + name + " is not a number: " + v);
  return out;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  DAS_CHECK_MSG(false, "flag --" + name + " is not a boolean: " + v);
  return false;
}

void Flags::print_help(std::ostream& os, const std::string& program) const {
  os << "usage: " << program << " [flags]\n\n";
  std::size_t width = 0;
  for (const auto& [name, entry] : entries_) width = std::max(width, name.size());
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << std::string(width - name.size() + 2, ' ')
       << entry.help;
    if (!entry.default_value.empty()) os << " (default: " << entry.default_value << ")";
    os << '\n';
  }
}

}  // namespace das
