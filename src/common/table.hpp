// Minimal aligned-column table printer for bench output.
//
// Benches print paper-style rows ("load | FCFS | Rein-SBF | DAS | gain%");
// this keeps them aligned and machine-greppable without dragging in a
// formatting library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace das {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_percent(double fraction, int precision = 1);

  /// Renders with a header rule and right-aligned numeric-looking columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace das
