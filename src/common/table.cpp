#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace das {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DAS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DAS_CHECK_MSG(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0) << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace das
