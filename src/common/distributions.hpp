// Random-variate families used by the workload generators.
//
// Every distribution exposes its analytic mean(): the experiment harness
// calibrates the open-loop arrival rate to hit a target utilisation, which
// requires E[service demand] in closed form rather than by Monte Carlo.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace das {

/// A real-valued random variate family. Implementations are immutable after
/// construction; sampling draws entropy only from the caller's Rng so the
/// same object can serve many deterministic streams.
class RealDistribution {
 public:
  virtual ~RealDistribution() = default;
  /// Draws one sample.
  virtual double sample(Rng& rng) const = 0;
  /// Exact expected value.
  virtual double mean() const = 0;
  /// Human-readable description for bench/report labels.
  virtual std::string describe() const = 0;
};

using RealDistPtr = std::shared_ptr<const RealDistribution>;

/// Point mass at `value`.
RealDistPtr make_constant(double value);
/// Uniform on [lo, hi].
RealDistPtr make_uniform_real(double lo, double hi);
/// Exponential with the given mean.
RealDistPtr make_exponential(double mean);
/// Lognormal parameterised by its own mean and the sigma of the underlying
/// normal (mu is derived), convenient for "mean X with heavy tail" workloads.
RealDistPtr make_lognormal_mean(double mean, double sigma);
/// Generalized Pareto (location, scale, shape>0), truncated at `cap` to keep
/// the mean finite and the simulation stable; models Facebook-ETC-like value
/// sizes. mean() is computed for the truncated law.
RealDistPtr make_generalized_pareto(double location, double scale, double shape,
                                    double cap);
/// Real two-point mixture: `small` w.p. (1-p_large), else `large`. The value
/// sizes of a "mostly small, occasionally huge" KV workload.
RealDistPtr make_bimodal_real(double small, double large, double p_large);

/// Integer-valued family (multiget fan-out, replica counts, ...).
class IntDistribution {
 public:
  virtual ~IntDistribution() = default;
  virtual std::uint32_t sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual std::string describe() const = 0;
};

using IntDistPtr = std::shared_ptr<const IntDistribution>;

/// Point mass at k (k >= 1).
IntDistPtr make_fixed_int(std::uint32_t k);
/// Uniform integer on [lo, hi].
IntDistPtr make_uniform_int(std::uint32_t lo, std::uint32_t hi);
/// Shifted geometric on {1, 2, ...} with success probability p in (0, 1],
/// truncated at `cap`.
IntDistPtr make_geometric(double p, std::uint32_t cap);
/// Zipf-distributed integer on {1..n} with exponent theta >= 0 (theta = 0 is
/// uniform); heavier tail toward 1 for larger theta.
IntDistPtr make_zipf_int(std::uint32_t n, double theta);
/// Two-point mixture: `small` w.p. (1-p_large), else `large`.
IntDistPtr make_bimodal(std::uint32_t small, std::uint32_t large, double p_large);
/// Arbitrary finite support with weights (need not be normalised).
IntDistPtr make_discrete(std::vector<std::uint32_t> values, std::vector<double> weights);

/// Zipf sampler over ranks {0..n-1}: rank 0 is the most popular. Exact
/// inverse-CDF sampling over a precomputed table; O(n) setup, O(log n) draw.
/// theta = 0 degenerates to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;
  std::uint64_t universe() const { return n_; }
  double theta() const { return theta_; }
  /// P(rank = r).
  double pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  double norm_;                 // generalized harmonic H_{n,theta}
  std::vector<double> cdf_;     // cumulative probabilities, size n
};

}  // namespace das
