// Minimal command-line flag parsing for the tools and examples.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, presence checks, --help text assembly, and strict rejection of
// unknown flags (a typo silently ignored is a wrong experiment silently
// run). No global state: each parser instance owns its registrations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace das {

class Flags {
 public:
  /// Declares a flag before parsing. `help` is shown by print_help().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv (skipping argv[0]). Returns false and fills `error` on an
  /// unknown flag, a missing value, or a flag given twice (last-one-wins
  /// would silently run a different experiment than the command line reads).
  /// Error messages are deterministic: "unknown flag: --x",
  /// "flag --x needs a value", "duplicate flag: --x". Positional arguments
  /// are collected into positionals().
  bool parse(int argc, const char* const* argv, std::string* error);

  bool has(const std::string& name) const;
  /// True if the flag was explicitly set on the command line.
  bool set_on_command_line(const std::string& name) const;

  std::string get_string(const std::string& name) const;
  /// Typed accessors; throw std::logic_error on unparseable values so a bad
  /// experiment spec never runs.
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  void print_help(std::ostream& os, const std::string& program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
    bool explicitly_set = false;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positionals_;
};

}  // namespace das
