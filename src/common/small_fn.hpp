// Small-buffer-optimized move-only callable.
//
// The event queue schedules millions of closures per simulated second;
// std::function heap-allocates once the capture exceeds its tiny internal
// buffer (two words on common ABIs) and pays a type-erasure manager call on
// every move, which a binary heap does O(log n) times per event. SmallFn
// inverts the trade: a caller-chosen inline capacity sized for the largest
// hot-path closure (the cluster's per-op send capture), trivial fn-pointer
// dispatch, and a noexcept move so heap sift operations never throw. Heap
// allocation only happens for callables that are oversized, over-aligned, or
// have throwing moves — none exist on the hot path, and is_inline() lets
// tests pin that.
//
// Move-only on purpose: an event callback is scheduled exactly once and
// invoked (or destroyed) exactly once, so copyability would only invite the
// gratuitous copies this type exists to eliminate.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace das {

template <std::size_t Capacity>
class SmallFn {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any void() callable. Intentionally implicit so call sites keep
  /// passing plain lambdas. Construction may throw (the callable's own
  /// move/copy, or bad_alloc on the heap fallback); moves never do.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace_fn(std::forward<F>(f));
  }

  /// Assigning a callable constructs it directly in the buffer — no
  /// temporary SmallFn, no relocate. The scheduling hot path relies on this
  /// to move a closure exactly once (call site -> pooled slot).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace_fn(std::forward<F>(f));
    return *this;
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Invokes the callable. Precondition: non-empty (callers DAS_CHECK).
  void operator()() { vtable_->invoke(buf_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }
  friend bool operator==(const SmallFn& fn, std::nullptr_t) noexcept {
    return fn.vtable_ == nullptr;
  }
  friend bool operator!=(const SmallFn& fn, std::nullptr_t) noexcept {
    return fn.vtable_ != nullptr;
  }

  /// True when the callable lives in the inline buffer (tests pin that the
  /// hot-path closures never spill to the heap). False when empty.
  bool is_inline() const noexcept {
    return vtable_ != nullptr && !vtable_->heap;
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's. Both
    /// point at raw Capacity-byte buffers.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static Fn* self(void* p) { return static_cast<Fn*>(p); }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*self(src)));
      self(src)->~Fn();
    }
    static void destroy(void* p) noexcept { self(p)->~Fn(); }
  };

  template <typename Fn>
  struct HeapOps {
    static Fn** cell(void* p) { return static_cast<Fn**>(p); }
    static void invoke(void* p) { (**cell(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(*cell(src));  // pointer steal; no Fn move
    }
    static void destroy(void* p) noexcept { delete *cell(p); }
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable{&InlineOps<Fn>::invoke,
                                        &InlineOps<Fn>::relocate,
                                        &InlineOps<Fn>::destroy, false};
  template <typename Fn>
  static constexpr VTable kHeapVTable{&HeapOps<Fn>::invoke,
                                      &HeapOps<Fn>::relocate,
                                      &HeapOps<Fn>::destroy, true};

  template <typename F>
  void emplace_fn(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &kHeapVTable<Fn>;
    }
  }

  void steal(SmallFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace das
