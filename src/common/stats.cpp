#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace das {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::mean() const { return n_ ? mean_ : 0.0; }

double StreamingStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }
double StreamingStats::min() const { return n_ ? min_ : 0.0; }
double StreamingStats::max() const { return n_ ? max_ : 0.0; }

LogHistogram::LogHistogram(double lo, double hi, double growth)
    : lo_(lo), hi_(hi), log_gamma_(std::log(growth)) {
  DAS_CHECK(lo > 0);
  DAS_CHECK(hi > lo);
  DAS_CHECK(growth > 1.0);
  const auto nbuckets =
      static_cast<std::size_t>(std::ceil(std::log(hi / lo) / log_gamma_)) + 1;
  counts_.assign(nbuckets, 0);
}

std::size_t LogHistogram::bucket_for(double value) const {
  if (!(value > lo_)) return 0;
  const auto b = static_cast<std::size_t>(std::log(value / lo_) / log_gamma_);
  return std::min(b, counts_.size() - 1);
}

double LogHistogram::bucket_mid(std::size_t b) const {
  // Geometric midpoint of [lo*gamma^b, lo*gamma^(b+1)].
  return lo_ * std::exp(log_gamma_ * (static_cast<double>(b) + 0.5));
}

void LogHistogram::add(double value) {
  // NaN fails every comparison, so bucket_for's `!(value > lo_)` clamp would
  // silently file it (and any negative sample) into bucket 0, corrupting all
  // quantiles downstream. A non-finite or negative latency is always an
  // upstream bug — fail loudly instead of absorbing it.
  DAS_CHECK_MSG(std::isfinite(value) && value >= 0.0,
                "histogram sample must be finite and non-negative");
  if (value > hi_) ++overflow_;
  ++counts_[bucket_for(value)];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  DAS_CHECK_MSG(counts_.size() == other.counts_.size() && lo_ == other.lo_ &&
                    log_gamma_ == other.log_gamma_,
                "histogram layouts must match to merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  overflow_ += other.overflow_;
}

double LogHistogram::quantile(double q) const {
  DAS_CHECK_MSG(total_ > 0, "quantile of empty histogram");
  DAS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile order must be in [0, 1]");
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen >= target && counts_[b] > 0) return bucket_mid(b);
    if (seen >= target) {
      // target fell between buckets; find the next non-empty one.
      for (std::size_t c = b; c < counts_.size(); ++c)
        if (counts_[c] > 0) return bucket_mid(c);
    }
  }
  // q == 0 with all mass later, or numeric edge: return last non-empty.
  for (std::size_t b = counts_.size(); b-- > 0;)
    if (counts_[b] > 0) return bucket_mid(b);
  return 0.0;
}

LatencyRecorder::LatencyRecorder(double hi) : hist_(1e-1, hi, 1.01) {}

void LatencyRecorder::add(double value) {
  // Histogram first: it rejects non-finite/negative samples, and adding to
  // the moments before that check would leave the two accumulators with
  // different counts after the throw.
  hist_.add(value);
  stats_.add(value);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  stats_.merge(other.stats_);
  hist_.merge(other.hist_);
}

LatencySummary LatencyRecorder::summary() const {
  LatencySummary s;
  s.count = stats_.count();
  if (s.count == 0) return s;
  s.mean = stats_.mean();
  s.p50 = hist_.p50();
  s.p95 = hist_.p95();
  s.p99 = hist_.p99();
  s.p999 = hist_.p999();
  s.max = stats_.max();
  return s;
}

}  // namespace das
