// Deterministic pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. One Rng per
// logical stream (per client, per server, per distribution) keeps runs
// reproducible regardless of event interleaving: the simulator guarantees a
// deterministic event order, and independent streams guarantee that adding a
// sampler to one entity never perturbs another's draws.
#pragma once

#include <cstdint>

namespace das {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though das provides its own samplers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via SplitMix64. Any seed,
  /// including 0, yields a valid non-degenerate state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next 64 raw bits.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform(double lo, double hi);

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independent child stream; deterministic in (this state, tag).
  Rng fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4];
};

}  // namespace das
