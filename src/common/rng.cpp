#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace das {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DAS_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  DAS_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  DAS_CHECK(mean > 0);
  // 1 - U in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mean, double stddev) {
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = next_u64() ^ (tag * 0xD1B54A32D192ED03ull);
  return Rng{splitmix64(mix)};
}

}  // namespace das
