// Fundamental types shared by every module.
//
// Simulated time is a double measured in MICROSECONDS since simulation
// start. Doubles keep event arithmetic exact enough for laptop-scale runs
// (sub-nanosecond resolution up to ~100 simulated years) while staying
// trivially printable; the named constants below make call sites readable.
#pragma once

#include <cstdint>
#include <limits>

namespace das {

/// Simulated time in microseconds since simulation start.
using SimTime = double;
/// A span of simulated time, also in microseconds.
using Duration = double;

inline constexpr Duration kMicrosecond = 1.0;
inline constexpr Duration kMillisecond = 1'000.0;
inline constexpr Duration kSecond = 1'000'000.0;

/// Sentinel meaning "never" / "no deadline".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Identifier types. These are plain integers with distinct aliases; the
/// cluster model never mixes them because every interface names its
/// parameter types explicitly (I.4: make interfaces precisely typed).
using RequestId = std::uint64_t;
using OperationId = std::uint64_t;
using ServerId = std::uint32_t;
using ClientId = std::uint32_t;
using KeyId = std::uint64_t;

/// Value/payload sizes in bytes.
using Bytes = std::uint64_t;

inline constexpr ServerId kInvalidServer = std::numeric_limits<ServerId>::max();

}  // namespace das
