// Lightweight precondition / invariant checking.
//
// DAS_CHECK is active in every build type: simulation correctness depends on
// these invariants and the cost is negligible next to event dispatch.
// Violations throw std::logic_error so tests can assert on them and example
// programs fail loudly instead of silently corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace das::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "DAS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace das::detail

#define DAS_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::das::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define DAS_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) ::das::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
