#include "common/invariant.hpp"

#include <sstream>

namespace das::detail {

void audit_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "DAS_AUDIT failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AuditError(os.str());
}

}  // namespace das::detail
