// Open-addressing hash map for the scheduler hot path.
//
// std::unordered_map pays a heap node per element and a pointer chase per
// lookup; the schedulers do several lookups per dispatched event on maps that
// rarely exceed a few hundred entries, so those cache misses dominate their
// per-op cost. FlatMap stores entries inline in one contiguous array with
// linear probing, so a lookup touches one or two cache lines and erase frees
// nothing.
//
// Design choices, all in service of determinism and the hot path:
//   - power-of-two capacity, load factor <= 0.75, probe step 1;
//   - backshift deletion (Knuth 6.4 algorithm R) instead of tombstones, so
//     probe chains never grow stale and lookup cost is bounded by the load
//     factor forever, regardless of churn;
//   - a fixed splitmix64-style mixer instead of std::hash, so iteration
//     order is a pure function of the insertion/erase sequence — identical
//     across standard libraries and runs (bit-identical results depend on
//     this only being *deterministic*, not on any particular order);
//   - Entry exposes `first`/`second` like std::pair, so structured bindings
//     and `it->second` call sites carry over unchanged.
//
// Constraints (checked or documented): keys are integral, K and V are
// default-constructible and movable. Erase and rehash invalidate iterators
// and references; no call site holds one across a mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace das {

/// Fixed 64-bit mixer (splitmix64 finalizer). Deterministic across platforms,
/// unlike std::hash which is unspecified.
inline std::uint64_t flat_hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K>,
                "FlatMap keys must be integral (handles, ids)");

 public:
  /// Layout-compatible stand-in for std::pair so call sites keep using
  /// `it->first` / `it->second` and structured bindings.
  struct Entry {
    K first{};
    V second{};
  };

  FlatMap() = default;

 private:
  struct Bucket {
    Entry kv;
    bool full = false;
  };

  template <bool Const>
  class Iter {
    using BucketPtr = std::conditional_t<Const, const Bucket*, Bucket*>;
    using EntryRef = std::conditional_t<Const, const Entry&, Entry&>;
    using EntryPtr = std::conditional_t<Const, const Entry*, Entry*>;

   public:
    Iter() = default;
    Iter(BucketPtr b, BucketPtr end) : b_(b), end_(end) { skip(); }
    /// const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : b_(other.b_), end_(other.end_) {}

    EntryRef operator*() const { return b_->kv; }
    EntryPtr operator->() const { return &b_->kv; }
    Iter& operator++() {
      ++b_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.b_ == b.b_; }
    friend bool operator!=(const Iter& a, const Iter& b) { return a.b_ != b.b_; }

   private:
    friend class FlatMap;
    friend class Iter<true>;
    void skip() {
      while (b_ != end_ && !b_->full) ++b_;
    }
    BucketPtr b_ = nullptr;
    BucketPtr end_ = nullptr;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return {buckets_.data(), buckets_.data() + buckets_.size()}; }
  iterator end() {
    return {buckets_.data() + buckets_.size(), buckets_.data() + buckets_.size()};
  }
  const_iterator begin() const {
    return {buckets_.data(), buckets_.data() + buckets_.size()};
  }
  const_iterator end() const {
    return {buckets_.data() + buckets_.size(), buckets_.data() + buckets_.size()};
  }

  iterator find(K key) {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : iter_at(i);
  }
  const_iterator find(K key) const {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : iter_at(i);
  }
  bool contains(K key) const { return find_index(key) != kNotFound; }

  V& at(K key) {
    const std::size_t i = find_index(key);
    DAS_CHECK_MSG(i != kNotFound, "FlatMap::at: key not present");
    return buckets_[i].kv.second;
  }
  const V& at(K key) const {
    const std::size_t i = find_index(key);
    DAS_CHECK_MSG(i != kNotFound, "FlatMap::at: key not present");
    return buckets_[i].kv.second;
  }

  V& operator[](K key) {
    maybe_grow();
    const std::size_t i = probe_for_insert(key);
    Bucket& b = buckets_[i];
    if (!b.full) {
      b.kv.first = key;
      b.full = true;
      ++size_;
    }
    return b.kv.second;
  }

  /// Inserts key -> V(args...) if absent; returns {iterator, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> emplace(K key, Args&&... args) {
    maybe_grow();
    const std::size_t i = probe_for_insert(key);
    Bucket& b = buckets_[i];
    if (b.full) return {iter_at(i), false};
    b.kv.first = key;
    b.kv.second = V(std::forward<Args>(args)...);
    b.full = true;
    ++size_;
    return {iter_at(i), true};
  }

  std::size_t erase(K key) {
    const std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase_index(i);
    return 1;
  }

  /// Erases the pointed-to entry. Backshift deletion moves later chain
  /// members, so ALL iterators (including this one) are invalidated.
  void erase(const_iterator it) {
    DAS_CHECK(it.b_ != nullptr && it.b_ != it.end_ && it.b_->full);
    erase_index(static_cast<std::size_t>(it.b_ - buckets_.data()));
  }

  void clear() {
    buckets_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Pre-sizes the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load <= 0.75
    if (cap > buckets_.size()) rehash(cap);
  }

 private:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t hash_of(K key) const {
    return static_cast<std::size_t>(
        flat_hash_mix(static_cast<std::uint64_t>(key)));
  }

  iterator iter_at(std::size_t i) {
    iterator it;
    it.b_ = buckets_.data() + i;
    it.end_ = buckets_.data() + buckets_.size();
    return it;
  }
  const_iterator iter_at(std::size_t i) const {
    const_iterator it;
    it.b_ = buckets_.data() + i;
    it.end_ = buckets_.data() + buckets_.size();
    return it;
  }

  std::size_t find_index(K key) const {
    if (buckets_.empty()) return kNotFound;
    std::size_t i = hash_of(key) & mask_;
    while (buckets_[i].full) {
      if (buckets_[i].kv.first == key) return i;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  /// First slot for `key`: its existing bucket, or the empty bucket where it
  /// belongs. Requires a non-full table (callers maybe_grow() first).
  std::size_t probe_for_insert(K key) {
    std::size_t i = hash_of(key) & mask_;
    while (buckets_[i].full && buckets_[i].kv.first != key) i = (i + 1) & mask_;
    return i;
  }

  void maybe_grow() {
    if (buckets_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > buckets_.size() * 3) {
      rehash(buckets_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    DAS_CHECK((new_cap & (new_cap - 1)) == 0);
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(new_cap, Bucket{});
    mask_ = new_cap - 1;
    for (Bucket& b : old) {
      if (!b.full) continue;
      const std::size_t i = probe_for_insert(b.kv.first);
      buckets_[i].kv = std::move(b.kv);
      buckets_[i].full = true;
    }
  }

  void erase_index(std::size_t i) {
    // Backshift deletion: walk the probe chain after the hole; any entry
    // whose home slot is cyclically at-or-before the hole can legally fill
    // it (moving it never breaks its own chain), leaving a new hole at its
    // old position. Stops at the first empty bucket, where every chain
    // through the hole has been repaired.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!buckets_[j].full) break;
      const std::size_t home = hash_of(buckets_[j].kv.first) & mask_;
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        buckets_[i].kv = std::move(buckets_[j].kv);
        i = j;
      }
    }
    buckets_[i].kv = Entry{};  // release held resources now, not at rehash
    buckets_[i].full = false;
    --size_;
  }

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Membership-only companion to FlatMap: same open-addressing table, same
/// deterministic fixed mixer, keyed by an integral id with no mapped value.
/// Exists so "was this handle/key seen" sets need not reach for
/// std::unordered_set (banned by das-deterministic-containers: its iteration
/// order is stdlib-specific, and even membership-only uses invite someone to
/// iterate it later).
template <typename K>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  bool contains(K key) const { return map_.contains(key); }

  /// Inserts `key`; returns true when it was not already present (the
  /// std::set::insert().second contract call sites rely on).
  bool insert(K key) { return map_.emplace(key).second; }

  std::size_t erase(K key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Empty {};
  FlatMap<K, Empty> map_;
};

}  // namespace das
