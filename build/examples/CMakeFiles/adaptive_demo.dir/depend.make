# Empty dependencies file for adaptive_demo.
# This may be replaced when dependencies are built.
