
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/log_engine.cpp" "src/store/CMakeFiles/das_store.dir/log_engine.cpp.o" "gcc" "src/store/CMakeFiles/das_store.dir/log_engine.cpp.o.d"
  "/root/repo/src/store/partitioner.cpp" "src/store/CMakeFiles/das_store.dir/partitioner.cpp.o" "gcc" "src/store/CMakeFiles/das_store.dir/partitioner.cpp.o.d"
  "/root/repo/src/store/storage_engine.cpp" "src/store/CMakeFiles/das_store.dir/storage_engine.cpp.o" "gcc" "src/store/CMakeFiles/das_store.dir/storage_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
