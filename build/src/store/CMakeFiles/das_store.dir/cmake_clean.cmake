file(REMOVE_RECURSE
  "CMakeFiles/das_store.dir/log_engine.cpp.o"
  "CMakeFiles/das_store.dir/log_engine.cpp.o.d"
  "CMakeFiles/das_store.dir/partitioner.cpp.o"
  "CMakeFiles/das_store.dir/partitioner.cpp.o.d"
  "CMakeFiles/das_store.dir/storage_engine.cpp.o"
  "CMakeFiles/das_store.dir/storage_engine.cpp.o.d"
  "libdas_store.a"
  "libdas_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
