file(REMOVE_RECURSE
  "libdas_store.a"
)
