# Empty compiler generated dependencies file for das_store.
# This may be replaced when dependencies are built.
