file(REMOVE_RECURSE
  "libdas_sim.a"
)
