file(REMOVE_RECURSE
  "CMakeFiles/das_sim.dir/simulator.cpp.o"
  "CMakeFiles/das_sim.dir/simulator.cpp.o.d"
  "libdas_sim.a"
  "libdas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
