file(REMOVE_RECURSE
  "CMakeFiles/das_workload.dir/arrival.cpp.o"
  "CMakeFiles/das_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/das_workload.dir/multiget.cpp.o"
  "CMakeFiles/das_workload.dir/multiget.cpp.o.d"
  "CMakeFiles/das_workload.dir/rate_function.cpp.o"
  "CMakeFiles/das_workload.dir/rate_function.cpp.o.d"
  "CMakeFiles/das_workload.dir/spec.cpp.o"
  "CMakeFiles/das_workload.dir/spec.cpp.o.d"
  "libdas_workload.a"
  "libdas_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
