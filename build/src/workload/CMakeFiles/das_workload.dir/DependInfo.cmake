
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cpp" "src/workload/CMakeFiles/das_workload.dir/arrival.cpp.o" "gcc" "src/workload/CMakeFiles/das_workload.dir/arrival.cpp.o.d"
  "/root/repo/src/workload/multiget.cpp" "src/workload/CMakeFiles/das_workload.dir/multiget.cpp.o" "gcc" "src/workload/CMakeFiles/das_workload.dir/multiget.cpp.o.d"
  "/root/repo/src/workload/rate_function.cpp" "src/workload/CMakeFiles/das_workload.dir/rate_function.cpp.o" "gcc" "src/workload/CMakeFiles/das_workload.dir/rate_function.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/workload/CMakeFiles/das_workload.dir/spec.cpp.o" "gcc" "src/workload/CMakeFiles/das_workload.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/das_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
