file(REMOVE_RECURSE
  "libdas_workload.a"
)
