# Empty dependencies file for das_workload.
# This may be replaced when dependencies are built.
