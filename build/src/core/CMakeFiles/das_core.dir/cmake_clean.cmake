file(REMOVE_RECURSE
  "CMakeFiles/das_core.dir/client.cpp.o"
  "CMakeFiles/das_core.dir/client.cpp.o.d"
  "CMakeFiles/das_core.dir/cluster.cpp.o"
  "CMakeFiles/das_core.dir/cluster.cpp.o.d"
  "CMakeFiles/das_core.dir/config.cpp.o"
  "CMakeFiles/das_core.dir/config.cpp.o.d"
  "CMakeFiles/das_core.dir/experiment.cpp.o"
  "CMakeFiles/das_core.dir/experiment.cpp.o.d"
  "CMakeFiles/das_core.dir/metrics.cpp.o"
  "CMakeFiles/das_core.dir/metrics.cpp.o.d"
  "CMakeFiles/das_core.dir/server.cpp.o"
  "CMakeFiles/das_core.dir/server.cpp.o.d"
  "CMakeFiles/das_core.dir/wire.cpp.o"
  "CMakeFiles/das_core.dir/wire.cpp.o.d"
  "libdas_core.a"
  "libdas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
