
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/das_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/client.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/das_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/das_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/das_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/das_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/das_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/server.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/das_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/das_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/das_store.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/das_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/das_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
