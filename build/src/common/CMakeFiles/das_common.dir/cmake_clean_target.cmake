file(REMOVE_RECURSE
  "libdas_common.a"
)
