# Empty dependencies file for das_common.
# This may be replaced when dependencies are built.
