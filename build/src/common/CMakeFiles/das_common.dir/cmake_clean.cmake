file(REMOVE_RECURSE
  "CMakeFiles/das_common.dir/distributions.cpp.o"
  "CMakeFiles/das_common.dir/distributions.cpp.o.d"
  "CMakeFiles/das_common.dir/flags.cpp.o"
  "CMakeFiles/das_common.dir/flags.cpp.o.d"
  "CMakeFiles/das_common.dir/rng.cpp.o"
  "CMakeFiles/das_common.dir/rng.cpp.o.d"
  "CMakeFiles/das_common.dir/stats.cpp.o"
  "CMakeFiles/das_common.dir/stats.cpp.o.d"
  "CMakeFiles/das_common.dir/table.cpp.o"
  "CMakeFiles/das_common.dir/table.cpp.o.d"
  "libdas_common.a"
  "libdas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
