file(REMOVE_RECURSE
  "libdas_sched.a"
)
