
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/basic_policies.cpp" "src/sched/CMakeFiles/das_sched.dir/basic_policies.cpp.o" "gcc" "src/sched/CMakeFiles/das_sched.dir/basic_policies.cpp.o.d"
  "/root/repo/src/sched/das.cpp" "src/sched/CMakeFiles/das_sched.dir/das.cpp.o" "gcc" "src/sched/CMakeFiles/das_sched.dir/das.cpp.o.d"
  "/root/repo/src/sched/rein.cpp" "src/sched/CMakeFiles/das_sched.dir/rein.cpp.o" "gcc" "src/sched/CMakeFiles/das_sched.dir/rein.cpp.o.d"
  "/root/repo/src/sched/req_srpt.cpp" "src/sched/CMakeFiles/das_sched.dir/req_srpt.cpp.o" "gcc" "src/sched/CMakeFiles/das_sched.dir/req_srpt.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/das_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/das_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
