# Empty compiler generated dependencies file for das_sched.
# This may be replaced when dependencies are built.
