file(REMOVE_RECURSE
  "CMakeFiles/das_sched.dir/basic_policies.cpp.o"
  "CMakeFiles/das_sched.dir/basic_policies.cpp.o.d"
  "CMakeFiles/das_sched.dir/das.cpp.o"
  "CMakeFiles/das_sched.dir/das.cpp.o.d"
  "CMakeFiles/das_sched.dir/rein.cpp.o"
  "CMakeFiles/das_sched.dir/rein.cpp.o.d"
  "CMakeFiles/das_sched.dir/req_srpt.cpp.o"
  "CMakeFiles/das_sched.dir/req_srpt.cpp.o.d"
  "CMakeFiles/das_sched.dir/scheduler.cpp.o"
  "CMakeFiles/das_sched.dir/scheduler.cpp.o.d"
  "libdas_sched.a"
  "libdas_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
