# Empty compiler generated dependencies file for dassim.
# This may be replaced when dependencies are built.
