file(REMOVE_RECURSE
  "CMakeFiles/dassim.dir/dassim.cpp.o"
  "CMakeFiles/dassim.dir/dassim.cpp.o.d"
  "dassim"
  "dassim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dassim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
