file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_valuesize.dir/bench_e9_valuesize.cpp.o"
  "CMakeFiles/bench_e9_valuesize.dir/bench_e9_valuesize.cpp.o.d"
  "bench_e9_valuesize"
  "bench_e9_valuesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_valuesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
