# Empty compiler generated dependencies file for bench_e10_summary_table.
# This may be replaced when dependencies are built.
