file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_hetero.dir/bench_e6_hetero.cpp.o"
  "CMakeFiles/bench_e6_hetero.dir/bench_e6_hetero.cpp.o.d"
  "bench_e6_hetero"
  "bench_e6_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
