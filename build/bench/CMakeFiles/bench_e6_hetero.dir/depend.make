# Empty dependencies file for bench_e6_hetero.
# This may be replaced when dependencies are built.
