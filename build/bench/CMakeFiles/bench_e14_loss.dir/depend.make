# Empty dependencies file for bench_e14_loss.
# This may be replaced when dependencies are built.
