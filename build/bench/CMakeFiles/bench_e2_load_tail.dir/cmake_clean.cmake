file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_load_tail.dir/bench_e2_load_tail.cpp.o"
  "CMakeFiles/bench_e2_load_tail.dir/bench_e2_load_tail.cpp.o.d"
  "bench_e2_load_tail"
  "bench_e2_load_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_load_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
