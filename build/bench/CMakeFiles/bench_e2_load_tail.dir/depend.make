# Empty dependencies file for bench_e2_load_tail.
# This may be replaced when dependencies are built.
