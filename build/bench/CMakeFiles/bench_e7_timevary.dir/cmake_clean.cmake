file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_timevary.dir/bench_e7_timevary.cpp.o"
  "CMakeFiles/bench_e7_timevary.dir/bench_e7_timevary.cpp.o.d"
  "bench_e7_timevary"
  "bench_e7_timevary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_timevary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
