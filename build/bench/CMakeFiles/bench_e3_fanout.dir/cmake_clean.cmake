file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_fanout.dir/bench_e3_fanout.cpp.o"
  "CMakeFiles/bench_e3_fanout.dir/bench_e3_fanout.cpp.o.d"
  "bench_e3_fanout"
  "bench_e3_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
