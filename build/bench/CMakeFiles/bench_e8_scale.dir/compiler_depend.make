# Empty compiler generated dependencies file for bench_e8_scale.
# This may be replaced when dependencies are built.
