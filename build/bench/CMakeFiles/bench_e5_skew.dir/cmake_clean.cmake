file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_skew.dir/bench_e5_skew.cpp.o"
  "CMakeFiles/bench_e5_skew.dir/bench_e5_skew.cpp.o.d"
  "bench_e5_skew"
  "bench_e5_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
