# Empty compiler generated dependencies file for das_bench_common.
# This may be replaced when dependencies are built.
