file(REMOVE_RECURSE
  "CMakeFiles/das_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/das_bench_common.dir/bench_common.cpp.o.d"
  "libdas_bench_common.a"
  "libdas_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
