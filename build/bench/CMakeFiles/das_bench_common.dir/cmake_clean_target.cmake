file(REMOVE_RECURSE
  "libdas_bench_common.a"
)
