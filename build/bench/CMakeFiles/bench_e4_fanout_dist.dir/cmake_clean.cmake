file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_fanout_dist.dir/bench_e4_fanout_dist.cpp.o"
  "CMakeFiles/bench_e4_fanout_dist.dir/bench_e4_fanout_dist.cpp.o.d"
  "bench_e4_fanout_dist"
  "bench_e4_fanout_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_fanout_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
