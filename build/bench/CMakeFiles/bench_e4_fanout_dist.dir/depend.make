# Empty dependencies file for bench_e4_fanout_dist.
# This may be replaced when dependencies are built.
