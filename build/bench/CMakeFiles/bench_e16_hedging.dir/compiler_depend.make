# Empty compiler generated dependencies file for bench_e16_hedging.
# This may be replaced when dependencies are built.
