# Empty dependencies file for bench_e17_write_mix.
# This may be replaced when dependencies are built.
