file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_write_mix.dir/bench_e17_write_mix.cpp.o"
  "CMakeFiles/bench_e17_write_mix.dir/bench_e17_write_mix.cpp.o.d"
  "bench_e17_write_mix"
  "bench_e17_write_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_write_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
