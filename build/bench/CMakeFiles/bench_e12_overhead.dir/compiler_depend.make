# Empty compiler generated dependencies file for bench_e12_overhead.
# This may be replaced when dependencies are built.
