# Empty dependencies file for bench_e15_preemption.
# This may be replaced when dependencies are built.
