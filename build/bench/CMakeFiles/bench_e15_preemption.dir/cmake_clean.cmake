file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_preemption.dir/bench_e15_preemption.cpp.o"
  "CMakeFiles/bench_e15_preemption.dir/bench_e15_preemption.cpp.o.d"
  "bench_e15_preemption"
  "bench_e15_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
