# Empty compiler generated dependencies file for bench_e1_load_mean.
# This may be replaced when dependencies are built.
