file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_load_mean.dir/bench_e1_load_mean.cpp.o"
  "CMakeFiles/bench_e1_load_mean.dir/bench_e1_load_mean.cpp.o.d"
  "bench_e1_load_mean"
  "bench_e1_load_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_load_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
