file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_client.cpp.o"
  "CMakeFiles/test_core.dir/core/test_client.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cluster.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cluster.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_hedging.cpp.o"
  "CMakeFiles/test_core.dir/core/test_hedging.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_preemption.cpp.o"
  "CMakeFiles/test_core.dir/core/test_preemption.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_replication.cpp.o"
  "CMakeFiles/test_core.dir/core/test_replication.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_server.cpp.o"
  "CMakeFiles/test_core.dir/core/test_server.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_timeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_timeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wire.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wire.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_writes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_writes.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
