
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_client.cpp" "tests/CMakeFiles/test_core.dir/core/test_client.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_client.cpp.o.d"
  "/root/repo/tests/core/test_cluster.cpp" "tests/CMakeFiles/test_core.dir/core/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cluster.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_hedging.cpp" "tests/CMakeFiles/test_core.dir/core/test_hedging.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hedging.cpp.o.d"
  "/root/repo/tests/core/test_preemption.cpp" "tests/CMakeFiles/test_core.dir/core/test_preemption.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_preemption.cpp.o.d"
  "/root/repo/tests/core/test_replication.cpp" "tests/CMakeFiles/test_core.dir/core/test_replication.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_replication.cpp.o.d"
  "/root/repo/tests/core/test_server.cpp" "tests/CMakeFiles/test_core.dir/core/test_server.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_server.cpp.o.d"
  "/root/repo/tests/core/test_timeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_timeline.cpp.o.d"
  "/root/repo/tests/core/test_wire.cpp" "tests/CMakeFiles/test_core.dir/core/test_wire.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_wire.cpp.o.d"
  "/root/repo/tests/core/test_writes.cpp" "tests/CMakeFiles/test_core.dir/core/test_writes.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_writes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/das_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/das_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/das_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/das_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
