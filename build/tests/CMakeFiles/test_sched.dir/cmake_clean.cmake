file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_basic_policies.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_basic_policies.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_das.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_das.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_keyed_queue.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_keyed_queue.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_rein.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_rein.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_req_srpt.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_req_srpt.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_scheduler_properties.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_scheduler_properties.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
