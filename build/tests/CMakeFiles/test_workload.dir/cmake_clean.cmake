file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_arrival.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_multiget.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_multiget.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_rate_function.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_rate_function.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_spec.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_spec.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
