file(REMOVE_RECURSE
  "CMakeFiles/test_store.dir/store/test_hash_table.cpp.o"
  "CMakeFiles/test_store.dir/store/test_hash_table.cpp.o.d"
  "CMakeFiles/test_store.dir/store/test_log_engine.cpp.o"
  "CMakeFiles/test_store.dir/store/test_log_engine.cpp.o.d"
  "CMakeFiles/test_store.dir/store/test_partitioner.cpp.o"
  "CMakeFiles/test_store.dir/store/test_partitioner.cpp.o.d"
  "CMakeFiles/test_store.dir/store/test_storage_engine.cpp.o"
  "CMakeFiles/test_store.dir/store/test_storage_engine.cpp.o.d"
  "test_store"
  "test_store.pdb"
  "test_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
