
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_fault_injection.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_fault_injection.cpp.o.d"
  "/root/repo/tests/integration/test_policies_end_to_end.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_policies_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_policies_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_queueing_theory.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_queueing_theory.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_queueing_theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/das_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/das_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/das_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/das_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
