
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_network.cpp" "tests/CMakeFiles/test_net.dir/net/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/das_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/das_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/das_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/das_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/das_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
